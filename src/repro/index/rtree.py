"""A from-scratch R-tree over a static point dataset.

Two construction paths are provided:

* **Sort-Tile-Recursive (STR) bulk loading** (default) — packs the
  points into fully-utilized leaves by recursively sorting and tiling
  one dimension at a time, then builds the upper levels the same way.
  This yields the compact, well-clustered tree the paper's experiments
  assume (page size 4096 bytes).
* **Incremental insertion** — classic Guttman insert with
  least-enlargement subtree choice and quadratic split, used by tests to
  cross-check that traversal results do not depend on tree shape.

Traversal state (heap ordering, pruning) lives in the *consumers*
(:mod:`repro.topk.brs`, :mod:`repro.core.incomparable`); the tree only
exposes its root node, child MBR arrays, and node-access accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.mbr import MBR

#: Bytes per R-tree page, mirroring the paper's experimental setup.
PAGE_SIZE_BYTES = 4096
#: Bytes per stored coordinate (float64).
_COORD_BYTES = 8
#: Per-entry bookkeeping bytes (child pointer / record id).
_POINTER_BYTES = 8


def compacted_row_map(n: int, removed_rows) -> np.ndarray:
    """Old-row → new-row map after deleting ``removed_rows`` from a
    compact ``0..n-1`` row space (removed entries map to ``-1``).

    The single definition both :meth:`RTree.patched` (renumbering
    leaf ids) and ``DatasetContext.derive`` (renumbering inherited
    cache entries that reference those ids) share — the two mappings
    must be identical or cached ids would point at the wrong rows.
    """
    removed = np.asarray(removed_rows, dtype=np.int64).reshape(-1)
    keep = np.ones(n, dtype=bool)
    keep[removed] = False
    row_map = np.full(n, -1, dtype=np.int64)
    row_map[keep] = np.arange(int(keep.sum()))
    return row_map


def default_capacity(dim: int, *, page_size: int = PAGE_SIZE_BYTES) -> int:
    """Entries per node for a given dimensionality and page size.

    An internal entry stores an MBR (2·d coordinates) plus a child
    pointer; we use the same capacity for leaves for simplicity.  The
    result is clamped to at least 4 so degenerate dimensionalities still
    produce a valid tree.
    """
    entry_bytes = 2 * dim * _COORD_BYTES + _POINTER_BYTES
    return max(4, page_size // entry_bytes)


@dataclass
class RTreeStats:
    """Mutable node-access counters (the paper's I/O proxy).

    Increments are unguarded: exact under single-threaded traversal,
    approximate when multiple threads traverse one tree (e.g. the
    parallel batch executor) — acceptable for a measurement proxy,
    but serial runs are required when asserting exact counts.
    """

    node_accesses: int = 0
    leaf_accesses: int = 0

    def reset(self) -> None:
        self.node_accesses = 0
        self.leaf_accesses = 0


class Node:
    """One R-tree node.

    Leaves hold ``point_ids`` (indices into the tree's point array);
    internal nodes hold child ``Node`` objects.  ``child_lowers`` /
    ``child_uppers`` cache the children's MBR corners as contiguous
    arrays so consumers can compute pruning keys for all children with
    one vectorized operation.
    """

    __slots__ = ("is_leaf", "children", "point_ids", "mbr",
                 "child_lowers", "child_uppers")

    def __init__(self, *, is_leaf: bool):
        self.is_leaf = is_leaf
        self.children: list["Node"] = []
        self.point_ids: list[int] = []
        self.mbr: MBR | None = None
        self.child_lowers: np.ndarray | None = None
        self.child_uppers: np.ndarray | None = None

    def refresh_arrays(self, points: np.ndarray) -> None:
        """Recompute the cached child-MBR arrays and this node's MBR."""
        if self.is_leaf:
            pts = points[self.point_ids]
            self.child_lowers = pts
            self.child_uppers = pts
            self.mbr = MBR.of_points(pts) if len(pts) else None
        else:
            self.child_lowers = np.array(
                [c.mbr.lower for c in self.children])
            self.child_uppers = np.array(
                [c.mbr.upper for c in self.children])
            self.mbr = MBR(self.child_lowers.min(axis=0),
                           self.child_uppers.max(axis=0))


class RTree:
    """R-tree over an immutable ``(n, d)`` point array.

    Parameters
    ----------
    points:
        The dataset ``P``.  A defensive copy is stored; row index is the
        point id used throughout the library.
    capacity:
        Maximum entries per node.  Defaults to the 4096-byte page
        heuristic of :func:`default_capacity`.
    method:
        ``"str"`` (bulk load, default) or ``"insert"`` (incremental).
    """

    def __init__(self, points, *, capacity: int | None = None,
                 method: str = "str"):
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("RTree requires a non-empty (n, d) array")
        if not np.all(np.isfinite(pts)):
            raise ValueError("RTree points must be finite")
        self.points = pts.copy()
        self.points.setflags(write=False)
        self.dim = int(pts.shape[1])
        self.capacity = capacity or default_capacity(self.dim)
        if self.capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.stats = RTreeStats()
        if method == "str":
            self.root = self._bulk_load_str()
        elif method == "insert":
            self.root = self._build_by_insertion()
        else:
            raise ValueError(f"unknown construction method: {method!r}")

    # ------------------------------------------------------------------
    # Copy-on-write patching (catalogue mutations)
    # ------------------------------------------------------------------

    @classmethod
    def patched(cls, parent: "RTree", points, *, removed_rows=(),
                updated_rows=(), appended: int = 0) -> "RTree":
        """A new tree over ``points``, derived from ``parent``.

        The catalogue lifecycle API advances a snapshot by a small
        delta — a handful of rows removed, updated or appended — and a
        full STR re-sort of the untouched points would dominate the
        cost of small mutations.  This constructor instead copies the
        parent's node structure (``parent`` itself is never modified:
        in-flight readers keep traversing it), deletes the
        removed/updated entries from their leaves, renumbers surviving
        ids when removals compacted the row space, and re-inserts the
        updated/appended points with the classic Guttman insert.
        Underflowing leaves are kept (or dropped when empty) rather
        than condensed — balance degrades slightly under sustained
        deletion, correctness never does.

        Parameters
        ----------
        parent:
            The tree of the previous snapshot.
        points:
            The full new ``(n', d)`` point array, with removed rows
            compacted away and appended rows at the tail.
        removed_rows, updated_rows:
            *Parent*-row indices deleted / modified by the mutation
            (disjoint).
        appended:
            Number of rows appended at the tail of ``points``.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        removed = np.unique(np.asarray(removed_rows,
                                       dtype=np.int64).reshape(-1))
        updated = np.unique(np.asarray(updated_rows,
                                       dtype=np.int64).reshape(-1))
        if pts.ndim != 2 or pts.shape[1] != parent.dim:
            raise ValueError(
                f"patched tree needs (n, {parent.dim}) points, got "
                f"shape {pts.shape}")
        expected = len(parent) - len(removed) + int(appended)
        if pts.shape[0] != expected:
            raise ValueError(
                f"patched tree expects {expected} points "
                f"({len(parent)} - {len(removed)} removed "
                f"+ {appended} appended), got {pts.shape[0]}")
        if pts.shape[0] == 0:
            raise ValueError("RTree requires a non-empty (n, d) array")
        if not np.all(np.isfinite(pts)):
            raise ValueError("RTree points must be finite")

        tree = object.__new__(cls)
        tree.points = pts.copy()
        tree.points.setflags(write=False)
        tree.dim = parent.dim
        tree.capacity = parent.capacity
        tree.stats = RTreeStats()
        tree.root = _copy_structure(parent.root)

        # Pull the removed and updated entries out of their leaves.
        evicted = np.concatenate([removed, updated])
        if len(evicted):
            pull = set(int(i) for i in evicted)
            for node in tree.iter_nodes():
                if node.is_leaf and pull:
                    kept = [pid for pid in node.point_ids
                            if pid not in pull]
                    pull.difference_update(node.point_ids)
                    node.point_ids = kept
            if pull:   # pragma: no cover - defensive
                raise ValueError(f"rows {sorted(pull)} not found in "
                                 "the parent tree")

        # Removal compacts the row space: renumber survivors.
        if len(removed):
            row_map = compacted_row_map(len(parent), removed)
            for node in tree.iter_nodes():
                if node.is_leaf and node.point_ids:
                    node.point_ids = row_map[
                        np.asarray(node.point_ids)].tolist()
        else:
            row_map = np.arange(len(parent), dtype=np.int64)

        root = _drop_empty_and_refresh(tree.root, tree.points)
        if root is None:
            # The delta touched every surviving point (e.g. a whole-
            # catalogue update): nothing is left to patch around, so
            # a fresh bulk load is both simpler and faster.  The flag
            # lets DatasetContext.derive account it as a build, not a
            # patch.
            tree = cls(pts, capacity=parent.capacity)
            tree.was_patched = False
            return tree
        tree.root = root
        tree.was_patched = True

        # Re-insert the changed points at their new coordinates.
        reinsert = [int(row_map[row]) for row in updated]
        reinsert.extend(range(expected - int(appended), expected))
        for pid in reinsert:
            tree.root = tree._insert(tree.root, pid)
        return tree

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.points.shape[0])

    @property
    def node_count(self) -> int:
        """Total number of nodes — the ``|RT|`` of the paper's bounds."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def height(self) -> int:
        h, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def iter_nodes(self):
        """Yield every node, pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def record_access(self, node: Node) -> None:
        """Count one node access (consumers call this when expanding)."""
        self.stats.node_accesses += 1
        if node.is_leaf:
            self.stats.leaf_accesses += 1

    # ------------------------------------------------------------------
    # Packed serialized form (shared-memory export)
    # ------------------------------------------------------------------

    def pack(self) -> dict[str, np.ndarray]:
        """Flatten the tree into a dict of flat numpy arrays.

        The packed form preserves the exact node structure and child
        order, and ships the same per-node arrays ``refresh_arrays``
        caches — leaf entry coordinates, stacked child-MBR corners,
        node MBRs — so a tree rebuilt by :meth:`from_packed` traverses
        *identically* (same heap keys, same tie-breaks, same node
        accesses) to this one.  All values are copied out of the live
        nodes; the arrays are self-contained and relocatable, which is
        what lets :mod:`repro.engine.shm` place them in a shared
        segment.

        Layout: nodes are numbered pre-order (children left to
        right).  ``node_start[i]:node_start[i] + node_count[i]``
        slices ``leaf_point_ids``/``leaf_entries`` for leaves and
        ``child_nodes``/``inner_lowers``/``inner_uppers`` for inner
        nodes.
        """
        order: list[Node] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            if not node.is_leaf:
                stack.extend(reversed(node.children))
        index = {id(node): i for i, node in enumerate(order)}

        n_nodes = len(order)
        d = self.dim
        is_leaf = np.empty(n_nodes, dtype=np.int8)
        start = np.empty(n_nodes, dtype=np.int64)
        count = np.empty(n_nodes, dtype=np.int64)
        mbr_lower = np.zeros((n_nodes, d), dtype=np.float64)
        mbr_upper = np.zeros((n_nodes, d), dtype=np.float64)
        leaf_ids: list[np.ndarray] = []
        leaf_entries: list[np.ndarray] = []
        child_nodes: list[np.ndarray] = []
        inner_lowers: list[np.ndarray] = []
        inner_uppers: list[np.ndarray] = []
        leaf_pos = inner_pos = 0
        for i, node in enumerate(order):
            is_leaf[i] = 1 if node.is_leaf else 0
            if node.mbr is not None:
                mbr_lower[i] = node.mbr.lower
                mbr_upper[i] = node.mbr.upper
            if node.is_leaf:
                ids = np.asarray(node.point_ids, dtype=np.int64)
                start[i], count[i] = leaf_pos, len(ids)
                leaf_pos += len(ids)
                leaf_ids.append(ids)
                leaf_entries.append(np.asarray(node.child_lowers,
                                               dtype=np.float64))
            else:
                kids = np.asarray(
                    [index[id(c)] for c in node.children],
                    dtype=np.int64)
                start[i], count[i] = inner_pos, len(kids)
                inner_pos += len(kids)
                child_nodes.append(kids)
                inner_lowers.append(np.asarray(node.child_lowers,
                                               dtype=np.float64))
                inner_uppers.append(np.asarray(node.child_uppers,
                                               dtype=np.float64))

        def _cat(blocks, dtype, width):
            if blocks:
                flat = np.concatenate(blocks)
                return np.ascontiguousarray(flat, dtype=dtype)
            shape = (0,) if width is None else (0, width)
            return np.empty(shape, dtype=dtype)

        return {
            "node_is_leaf": is_leaf,
            "node_start": start,
            "node_count": count,
            "node_mbr_lower": mbr_lower,
            "node_mbr_upper": mbr_upper,
            "leaf_point_ids": _cat(leaf_ids, np.int64, None),
            "leaf_entries": _cat(leaf_entries, np.float64, d),
            "child_nodes": _cat(child_nodes, np.int64, None),
            "inner_lowers": _cat(inner_lowers, np.float64, d),
            "inner_uppers": _cat(inner_uppers, np.float64, d),
        }

    @classmethod
    def from_packed(cls, packed: dict, points: np.ndarray, *,
                    capacity: int) -> "RTree":
        """Rebuild a tree from :meth:`pack` output, adopting ``points``.

        ``points`` is adopted *without copying* — the zero-copy
        shared-memory path hands in a read-only view over a shared
        buffer — and every per-node array is a slice view into the
        packed arrays, so attaching costs one small Node object per
        tree node and no data movement.  The rebuilt tree is
        read-only: traversals are exact replicas of the source tree's,
        but it must not be mutated (``patched`` derives fresh trees
        and is unaffected).
        """
        points = np.asarray(points, dtype=np.float64)
        tree = object.__new__(cls)
        tree.points = points
        tree.dim = int(points.shape[1])
        tree.capacity = int(capacity)
        tree.stats = RTreeStats()

        is_leaf = packed["node_is_leaf"]
        starts = packed["node_start"]
        counts = packed["node_count"]
        nodes = [Node(is_leaf=bool(flag)) for flag in is_leaf]
        for i, node in enumerate(nodes):
            a = int(starts[i])
            b = a + int(counts[i])
            if node.is_leaf:
                node.point_ids = packed["leaf_point_ids"][a:b]
                pts = packed["leaf_entries"][a:b]
                node.child_lowers = pts
                node.child_uppers = pts
                node.mbr = (MBR(packed["node_mbr_lower"][i],
                                packed["node_mbr_upper"][i])
                            if b > a else None)
            else:
                node.children = [nodes[j]
                                 for j in packed["child_nodes"][a:b]]
                node.child_lowers = packed["inner_lowers"][a:b]
                node.child_uppers = packed["inner_uppers"][a:b]
                node.mbr = MBR(packed["node_mbr_lower"][i],
                               packed["node_mbr_upper"][i])
        tree.root = nodes[0]
        return tree

    # ------------------------------------------------------------------
    # Queries used directly by tests / examples
    # ------------------------------------------------------------------

    def knn_query(self, q, k: int) -> np.ndarray:
        """Ids of the k points nearest (Euclidean) to ``q``.

        Classic best-first kNN [Hjaltason & Samet]: a min-heap keyed
        by the MBR's minimum distance to ``q``; every popped point is
        the next nearest.  Used by examples to relate spatial
        proximity to score proximity, and by tests as another
        traversal-correctness probe.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        import heapq

        qv = np.asarray(q, dtype=np.float64)
        k = min(k, len(self))
        counter = 0
        heap: list[tuple[float, int, int, object]] = [
            (0.0, counter, 1, self.root)]
        out: list[int] = []
        while heap and len(out) < k:
            _, _, kind, payload = heapq.heappop(heap)
            if kind == 0:
                out.append(int(payload))  # type: ignore[arg-type]
                continue
            node: Node = payload  # type: ignore[assignment]
            self.record_access(node)
            if node.is_leaf:
                dists = np.linalg.norm(node.child_lowers - qv, axis=1)
                for pid, dist in zip(node.point_ids, dists):
                    counter += 1
                    heapq.heappush(heap, (float(dist), pid, 0, pid))
            else:
                for child in node.children:
                    gap = np.maximum(
                        np.maximum(child.mbr.lower - qv,
                                   qv - child.mbr.upper), 0.0)
                    counter += 1
                    heapq.heappush(
                        heap,
                        (float(np.linalg.norm(gap)), counter, 1,
                         child))
        return np.asarray(out, dtype=np.int64)

    def range_query(self, lower, upper) -> np.ndarray:
        """Ids of points inside the axis-aligned box ``[lower, upper]``."""
        box = MBR(np.asarray(lower, dtype=np.float64),
                  np.asarray(upper, dtype=np.float64))
        out: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.record_access(node)
            if node.is_leaf:
                pts = self.points[node.point_ids]
                inside = (np.all(pts >= box.lower, axis=1)
                          & np.all(pts <= box.upper, axis=1))
                out.extend(np.asarray(node.point_ids)[inside].tolist())
            else:
                for child in node.children:
                    if child.mbr.intersects(box):
                        stack.append(child)
        return np.asarray(sorted(out), dtype=np.int64)

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------

    def _bulk_load_str(self) -> Node:
        ids = np.arange(len(self.points))
        leaves = self._str_pack_points(ids)
        return self._build_upper_levels(leaves)

    def _str_pack_points(self, ids: np.ndarray) -> list[Node]:
        """Tile point ids into leaves via recursive sort-tile."""
        groups = self._str_tile(self.points[ids], ids, axis=0)
        leaves = []
        for group in groups:
            leaf = Node(is_leaf=True)
            leaf.point_ids = [int(i) for i in group]
            leaf.refresh_arrays(self.points)
            leaves.append(leaf)
        return leaves

    def _str_tile(self, coords: np.ndarray, ids: np.ndarray,
                  *, axis: int) -> list[np.ndarray]:
        """Recursively slab-partition ``ids`` so each final group fits
        in one node."""
        n = len(ids)
        if n <= self.capacity:
            return [ids]
        remaining_axes = self.dim - axis
        n_pages = int(np.ceil(n / self.capacity))
        slabs = (int(np.ceil(n_pages ** (1.0 / remaining_axes)))
                 if remaining_axes > 1 else n_pages)
        order = np.argsort(coords[:, axis], kind="stable")
        ids_sorted = ids[order]
        coords_sorted = coords[order]
        slab_size = int(np.ceil(n / slabs))
        out: list[np.ndarray] = []
        for start in range(0, n, slab_size):
            chunk_ids = ids_sorted[start:start + slab_size]
            chunk_coords = coords_sorted[start:start + slab_size]
            if axis + 1 < self.dim:
                out.extend(self._str_tile(chunk_coords, chunk_ids,
                                          axis=axis + 1))
            else:
                for s in range(0, len(chunk_ids), self.capacity):
                    out.append(chunk_ids[s:s + self.capacity])
        return out

    def _build_upper_levels(self, nodes: list[Node]) -> Node:
        while len(nodes) > 1:
            centers = np.array([
                (n.mbr.lower + n.mbr.upper) / 2.0 for n in nodes])
            order = np.lexsort(centers.T[::-1])
            nodes = [nodes[i] for i in order]
            parents: list[Node] = []
            for start in range(0, len(nodes), self.capacity):
                parent = Node(is_leaf=False)
                parent.children = nodes[start:start + self.capacity]
                parent.refresh_arrays(self.points)
                parents.append(parent)
            nodes = parents
        nodes[0].refresh_arrays(self.points)
        return nodes[0]

    # ------------------------------------------------------------------
    # Incremental construction (Guttman insert + quadratic split)
    # ------------------------------------------------------------------

    def _build_by_insertion(self) -> Node:
        root = Node(is_leaf=True)
        root.point_ids = [0]
        root.refresh_arrays(self.points)
        for pid in range(1, len(self.points)):
            root = self._insert(root, pid)
        return root

    def _insert(self, root: Node, pid: int) -> Node:
        split = self._insert_into(root, pid)
        if split is None:
            return root
        new_root = Node(is_leaf=False)
        new_root.children = [root, split]
        new_root.refresh_arrays(self.points)
        return new_root

    def _insert_into(self, node: Node, pid: int) -> Node | None:
        """Insert point ``pid`` under ``node``; return a sibling on split."""
        if node.is_leaf:
            node.point_ids.append(pid)
            if len(node.point_ids) > self.capacity:
                return self._split_leaf(node)
            node.refresh_arrays(self.points)
            return None
        point = self.points[pid]
        # Least-enlargement choice, vectorized over the cached child
        # MBR arrays (kept current by refresh_arrays on the way out):
        # the per-child MBR.enlargement()/volume() Python loop was the
        # hot spot of the catalogue patch path.
        lowers, uppers = node.child_lowers, node.child_uppers
        current = np.prod(uppers - lowers, axis=1)
        grown = np.prod(np.maximum(uppers, point)
                        - np.minimum(lowers, point), axis=1)
        best = node.children[
            int(np.lexsort((current, grown - current))[0])]
        sibling = self._insert_into(best, pid)
        if sibling is not None:
            node.children.append(sibling)
            if len(node.children) > self.capacity:
                overflow = self._split_internal(node)
                node.refresh_arrays(self.points)
                return overflow
        node.refresh_arrays(self.points)
        return None

    def _split_leaf(self, node: Node) -> Node:
        ids = node.point_ids
        group_a, group_b = _quadratic_split(
            [MBR.of_point(self.points[i]) for i in ids])
        sibling = Node(is_leaf=True)
        node.point_ids = [ids[i] for i in group_a]
        sibling.point_ids = [ids[i] for i in group_b]
        node.refresh_arrays(self.points)
        sibling.refresh_arrays(self.points)
        return sibling

    def _split_internal(self, node: Node) -> Node:
        children = node.children
        group_a, group_b = _quadratic_split([c.mbr for c in children])
        sibling = Node(is_leaf=False)
        node.children = [children[i] for i in group_a]
        sibling.children = [children[i] for i in group_b]
        node.refresh_arrays(self.points)
        sibling.refresh_arrays(self.points)
        return sibling


def _copy_structure(node: Node) -> Node:
    """Copy a subtree's shape (ids and child lists, not the cached
    MBR arrays — the patch refreshes those after editing)."""
    clone = Node(is_leaf=node.is_leaf)
    if node.is_leaf:
        clone.point_ids = list(node.point_ids)
    else:
        clone.children = [_copy_structure(child)
                          for child in node.children]
    return clone


def _drop_empty_and_refresh(node: Node,
                            points: np.ndarray) -> Node | None:
    """Post-order: prune emptied nodes, rebuild MBRs bottom-up.

    Returns the (possibly pruned) node, or ``None`` when the subtree
    holds no points at all.
    """
    if node.is_leaf:
        if not node.point_ids:
            return None
        node.refresh_arrays(points)
        return node
    node.children = [
        child for child in
        (_drop_empty_and_refresh(c, points) for c in node.children)
        if child is not None]
    if not node.children:
        return None
    node.refresh_arrays(points)
    return node


def _quadratic_split(boxes: list[MBR]) -> tuple[list[int], list[int]]:
    """Guttman's quadratic split over a list of entry MBRs.

    Returns two index groups, each non-empty and at most
    ``len(boxes) - 1`` long.  The O(n²) seed-pair search runs as one
    broadcast instead of a Python double loop (ties resolve to the
    same first pair the loop picked), keeping node splits cheap on
    the catalogue patch path, where clustered re-inserts split the
    same leaf repeatedly.
    """
    n = len(boxes)
    lowers = np.array([box.lower for box in boxes])
    uppers = np.array([box.upper for box in boxes])
    volumes = np.prod(uppers - lowers, axis=1)
    merged = np.prod(
        np.maximum(uppers[:, None, :], uppers[None, :, :])
        - np.minimum(lowers[:, None, :], lowers[None, :, :]), axis=2)
    waste = merged - volumes[:, None] - volumes[None, :]
    # Row-major argmax visits (i, j) before (j, i) for i < j, so the
    # first-maximum pair matches the historical i<j scan order.
    np.fill_diagonal(waste, -np.inf)
    seed_a, seed_b = np.unravel_index(int(np.argmax(waste)),
                                      waste.shape)
    if seed_a > seed_b:   # pragma: no cover - symmetric safeguard
        seed_a, seed_b = seed_b, seed_a
    group_a, group_b = [int(seed_a)], [int(seed_b)]
    lo_a, hi_a = lowers[seed_a], uppers[seed_a]
    lo_b, hi_b = lowers[seed_b], uppers[seed_b]
    vol_a = volumes[seed_a]
    vol_b = volumes[seed_b]
    rest = [i for i in range(n) if i not in (seed_a, seed_b)]
    min_fill = max(1, n // 3)
    for position, idx in enumerate(rest):
        remaining = len(rest) - position
        if len(group_a) + remaining <= min_fill:
            take_a = True
        elif len(group_b) + remaining <= min_fill:
            take_a = False
        else:
            grow_a = np.prod(np.maximum(hi_a, uppers[idx])
                             - np.minimum(lo_a, lowers[idx])) - vol_a
            grow_b = np.prod(np.maximum(hi_b, uppers[idx])
                             - np.minimum(lo_b, lowers[idx])) - vol_b
            take_a = grow_a < grow_b or (grow_a == grow_b
                                         and len(group_a)
                                         <= len(group_b))
        if take_a:
            group_a.append(idx)
            lo_a = np.minimum(lo_a, lowers[idx])
            hi_a = np.maximum(hi_a, uppers[idx])
            vol_a = np.prod(hi_a - lo_a)
        else:
            group_b.append(idx)
            lo_b = np.minimum(lo_b, lowers[idx])
            hi_b = np.maximum(hi_b, uppers[idx])
            vol_b = np.prod(hi_b - lo_b)
    return group_a, group_b
