"""A from-scratch R-tree over a static point dataset.

Two construction paths are provided:

* **Sort-Tile-Recursive (STR) bulk loading** (default) — packs the
  points into fully-utilized leaves by recursively sorting and tiling
  one dimension at a time, then builds the upper levels the same way.
  This yields the compact, well-clustered tree the paper's experiments
  assume (page size 4096 bytes).
* **Incremental insertion** — classic Guttman insert with
  least-enlargement subtree choice and quadratic split, used by tests to
  cross-check that traversal results do not depend on tree shape.

Traversal state (heap ordering, pruning) lives in the *consumers*
(:mod:`repro.topk.brs`, :mod:`repro.core.incomparable`); the tree only
exposes its root node, child MBR arrays, and node-access accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.mbr import MBR

#: Bytes per R-tree page, mirroring the paper's experimental setup.
PAGE_SIZE_BYTES = 4096
#: Bytes per stored coordinate (float64).
_COORD_BYTES = 8
#: Per-entry bookkeeping bytes (child pointer / record id).
_POINTER_BYTES = 8


def default_capacity(dim: int, *, page_size: int = PAGE_SIZE_BYTES) -> int:
    """Entries per node for a given dimensionality and page size.

    An internal entry stores an MBR (2·d coordinates) plus a child
    pointer; we use the same capacity for leaves for simplicity.  The
    result is clamped to at least 4 so degenerate dimensionalities still
    produce a valid tree.
    """
    entry_bytes = 2 * dim * _COORD_BYTES + _POINTER_BYTES
    return max(4, page_size // entry_bytes)


@dataclass
class RTreeStats:
    """Mutable node-access counters (the paper's I/O proxy).

    Increments are unguarded: exact under single-threaded traversal,
    approximate when multiple threads traverse one tree (e.g. the
    parallel batch executor) — acceptable for a measurement proxy,
    but serial runs are required when asserting exact counts.
    """

    node_accesses: int = 0
    leaf_accesses: int = 0

    def reset(self) -> None:
        self.node_accesses = 0
        self.leaf_accesses = 0


class Node:
    """One R-tree node.

    Leaves hold ``point_ids`` (indices into the tree's point array);
    internal nodes hold child ``Node`` objects.  ``child_lowers`` /
    ``child_uppers`` cache the children's MBR corners as contiguous
    arrays so consumers can compute pruning keys for all children with
    one vectorized operation.
    """

    __slots__ = ("is_leaf", "children", "point_ids", "mbr",
                 "child_lowers", "child_uppers")

    def __init__(self, *, is_leaf: bool):
        self.is_leaf = is_leaf
        self.children: list["Node"] = []
        self.point_ids: list[int] = []
        self.mbr: MBR | None = None
        self.child_lowers: np.ndarray | None = None
        self.child_uppers: np.ndarray | None = None

    def refresh_arrays(self, points: np.ndarray) -> None:
        """Recompute the cached child-MBR arrays and this node's MBR."""
        if self.is_leaf:
            pts = points[self.point_ids]
            self.child_lowers = pts
            self.child_uppers = pts
            self.mbr = MBR.of_points(pts) if len(pts) else None
        else:
            self.child_lowers = np.array(
                [c.mbr.lower for c in self.children])
            self.child_uppers = np.array(
                [c.mbr.upper for c in self.children])
            self.mbr = MBR(self.child_lowers.min(axis=0),
                           self.child_uppers.max(axis=0))


class RTree:
    """R-tree over an immutable ``(n, d)`` point array.

    Parameters
    ----------
    points:
        The dataset ``P``.  A defensive copy is stored; row index is the
        point id used throughout the library.
    capacity:
        Maximum entries per node.  Defaults to the 4096-byte page
        heuristic of :func:`default_capacity`.
    method:
        ``"str"`` (bulk load, default) or ``"insert"`` (incremental).
    """

    def __init__(self, points, *, capacity: int | None = None,
                 method: str = "str"):
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("RTree requires a non-empty (n, d) array")
        if not np.all(np.isfinite(pts)):
            raise ValueError("RTree points must be finite")
        self.points = pts.copy()
        self.points.setflags(write=False)
        self.dim = int(pts.shape[1])
        self.capacity = capacity or default_capacity(self.dim)
        if self.capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.stats = RTreeStats()
        if method == "str":
            self.root = self._bulk_load_str()
        elif method == "insert":
            self.root = self._build_by_insertion()
        else:
            raise ValueError(f"unknown construction method: {method!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.points.shape[0])

    @property
    def node_count(self) -> int:
        """Total number of nodes — the ``|RT|`` of the paper's bounds."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def height(self) -> int:
        h, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def iter_nodes(self):
        """Yield every node, pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def record_access(self, node: Node) -> None:
        """Count one node access (consumers call this when expanding)."""
        self.stats.node_accesses += 1
        if node.is_leaf:
            self.stats.leaf_accesses += 1

    # ------------------------------------------------------------------
    # Queries used directly by tests / examples
    # ------------------------------------------------------------------

    def knn_query(self, q, k: int) -> np.ndarray:
        """Ids of the k points nearest (Euclidean) to ``q``.

        Classic best-first kNN [Hjaltason & Samet]: a min-heap keyed
        by the MBR's minimum distance to ``q``; every popped point is
        the next nearest.  Used by examples to relate spatial
        proximity to score proximity, and by tests as another
        traversal-correctness probe.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        import heapq

        qv = np.asarray(q, dtype=np.float64)
        k = min(k, len(self))
        counter = 0
        heap: list[tuple[float, int, int, object]] = [
            (0.0, counter, 1, self.root)]
        out: list[int] = []
        while heap and len(out) < k:
            _, _, kind, payload = heapq.heappop(heap)
            if kind == 0:
                out.append(int(payload))  # type: ignore[arg-type]
                continue
            node: Node = payload  # type: ignore[assignment]
            self.record_access(node)
            if node.is_leaf:
                dists = np.linalg.norm(node.child_lowers - qv, axis=1)
                for pid, dist in zip(node.point_ids, dists):
                    counter += 1
                    heapq.heappush(heap, (float(dist), pid, 0, pid))
            else:
                for child in node.children:
                    gap = np.maximum(
                        np.maximum(child.mbr.lower - qv,
                                   qv - child.mbr.upper), 0.0)
                    counter += 1
                    heapq.heappush(
                        heap,
                        (float(np.linalg.norm(gap)), counter, 1,
                         child))
        return np.asarray(out, dtype=np.int64)

    def range_query(self, lower, upper) -> np.ndarray:
        """Ids of points inside the axis-aligned box ``[lower, upper]``."""
        box = MBR(np.asarray(lower, dtype=np.float64),
                  np.asarray(upper, dtype=np.float64))
        out: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.record_access(node)
            if node.is_leaf:
                pts = self.points[node.point_ids]
                inside = (np.all(pts >= box.lower, axis=1)
                          & np.all(pts <= box.upper, axis=1))
                out.extend(np.asarray(node.point_ids)[inside].tolist())
            else:
                for child in node.children:
                    if child.mbr.intersects(box):
                        stack.append(child)
        return np.asarray(sorted(out), dtype=np.int64)

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------

    def _bulk_load_str(self) -> Node:
        ids = np.arange(len(self.points))
        leaves = self._str_pack_points(ids)
        return self._build_upper_levels(leaves)

    def _str_pack_points(self, ids: np.ndarray) -> list[Node]:
        """Tile point ids into leaves via recursive sort-tile."""
        groups = self._str_tile(self.points[ids], ids, axis=0)
        leaves = []
        for group in groups:
            leaf = Node(is_leaf=True)
            leaf.point_ids = [int(i) for i in group]
            leaf.refresh_arrays(self.points)
            leaves.append(leaf)
        return leaves

    def _str_tile(self, coords: np.ndarray, ids: np.ndarray,
                  *, axis: int) -> list[np.ndarray]:
        """Recursively slab-partition ``ids`` so each final group fits
        in one node."""
        n = len(ids)
        if n <= self.capacity:
            return [ids]
        remaining_axes = self.dim - axis
        n_pages = int(np.ceil(n / self.capacity))
        slabs = (int(np.ceil(n_pages ** (1.0 / remaining_axes)))
                 if remaining_axes > 1 else n_pages)
        order = np.argsort(coords[:, axis], kind="stable")
        ids_sorted = ids[order]
        coords_sorted = coords[order]
        slab_size = int(np.ceil(n / slabs))
        out: list[np.ndarray] = []
        for start in range(0, n, slab_size):
            chunk_ids = ids_sorted[start:start + slab_size]
            chunk_coords = coords_sorted[start:start + slab_size]
            if axis + 1 < self.dim:
                out.extend(self._str_tile(chunk_coords, chunk_ids,
                                          axis=axis + 1))
            else:
                for s in range(0, len(chunk_ids), self.capacity):
                    out.append(chunk_ids[s:s + self.capacity])
        return out

    def _build_upper_levels(self, nodes: list[Node]) -> Node:
        while len(nodes) > 1:
            centers = np.array([
                (n.mbr.lower + n.mbr.upper) / 2.0 for n in nodes])
            order = np.lexsort(centers.T[::-1])
            nodes = [nodes[i] for i in order]
            parents: list[Node] = []
            for start in range(0, len(nodes), self.capacity):
                parent = Node(is_leaf=False)
                parent.children = nodes[start:start + self.capacity]
                parent.refresh_arrays(self.points)
                parents.append(parent)
            nodes = parents
        nodes[0].refresh_arrays(self.points)
        return nodes[0]

    # ------------------------------------------------------------------
    # Incremental construction (Guttman insert + quadratic split)
    # ------------------------------------------------------------------

    def _build_by_insertion(self) -> Node:
        root = Node(is_leaf=True)
        root.point_ids = [0]
        root.refresh_arrays(self.points)
        for pid in range(1, len(self.points)):
            root = self._insert(root, pid)
        return root

    def _insert(self, root: Node, pid: int) -> Node:
        split = self._insert_into(root, pid)
        if split is None:
            return root
        new_root = Node(is_leaf=False)
        new_root.children = [root, split]
        new_root.refresh_arrays(self.points)
        return new_root

    def _insert_into(self, node: Node, pid: int) -> Node | None:
        """Insert point ``pid`` under ``node``; return a sibling on split."""
        if node.is_leaf:
            node.point_ids.append(pid)
            if len(node.point_ids) > self.capacity:
                return self._split_leaf(node)
            node.refresh_arrays(self.points)
            return None
        point = self.points[pid]
        best = min(node.children,
                   key=lambda c: (c.mbr.enlargement(point), c.mbr.volume()))
        sibling = self._insert_into(best, pid)
        if sibling is not None:
            node.children.append(sibling)
            if len(node.children) > self.capacity:
                overflow = self._split_internal(node)
                node.refresh_arrays(self.points)
                return overflow
        node.refresh_arrays(self.points)
        return None

    def _split_leaf(self, node: Node) -> Node:
        ids = node.point_ids
        group_a, group_b = _quadratic_split(
            [MBR.of_point(self.points[i]) for i in ids])
        sibling = Node(is_leaf=True)
        node.point_ids = [ids[i] for i in group_a]
        sibling.point_ids = [ids[i] for i in group_b]
        node.refresh_arrays(self.points)
        sibling.refresh_arrays(self.points)
        return sibling

    def _split_internal(self, node: Node) -> Node:
        children = node.children
        group_a, group_b = _quadratic_split([c.mbr for c in children])
        sibling = Node(is_leaf=False)
        node.children = [children[i] for i in group_a]
        sibling.children = [children[i] for i in group_b]
        node.refresh_arrays(self.points)
        sibling.refresh_arrays(self.points)
        return sibling


def _quadratic_split(boxes: list[MBR]) -> tuple[list[int], list[int]]:
    """Guttman's quadratic split over a list of entry MBRs.

    Returns two index groups, each non-empty and at most
    ``len(boxes) - 1`` long.
    """
    n = len(boxes)
    worst_pair, worst_waste = (0, 1), -np.inf
    for i in range(n):
        for j in range(i + 1, n):
            waste = (boxes[i].merged(boxes[j]).volume()
                     - boxes[i].volume() - boxes[j].volume())
            if waste > worst_waste:
                worst_waste, worst_pair = waste, (i, j)
    seed_a, seed_b = worst_pair
    group_a, group_b = [seed_a], [seed_b]
    box_a, box_b = boxes[seed_a], boxes[seed_b]
    rest = [i for i in range(n) if i not in (seed_a, seed_b)]
    min_fill = max(1, n // 3)
    for idx in rest:
        if len(group_a) + (len(rest) - rest.index(idx)) <= min_fill:
            group_a.append(idx)
            box_a = box_a.merged(boxes[idx])
            continue
        if len(group_b) + (len(rest) - rest.index(idx)) <= min_fill:
            group_b.append(idx)
            box_b = box_b.merged(boxes[idx])
            continue
        grow_a = box_a.merged(boxes[idx]).volume() - box_a.volume()
        grow_b = box_b.merged(boxes[idx]).volume() - box_b.volume()
        if grow_a < grow_b or (grow_a == grow_b
                               and len(group_a) <= len(group_b)):
            group_a.append(idx)
            box_a = box_a.merged(boxes[idx])
        else:
            group_b.append(idx)
            box_b = box_b.merged(boxes[idx])
    return group_a, group_b
