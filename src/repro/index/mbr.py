"""Minimum bounding rectangles (MBRs) and their pruning predicates.

The three predicates the WQRTQ traversals rely on:

* ``min_score(w)`` — a lower bound on the score of any point inside the
  MBR under a non-negative linear scoring function: for ``w >= 0`` the
  minimum of ``w . x`` over a box is attained at the lower corner.  BRS
  uses this as its best-first key.
* ``dominates(q)`` / ``dominated_by(q)`` — whether *every* point of the
  box dominates / is dominated by ``q``; ``FindIncom`` prunes subtrees
  whose MBR is entirely dominated by the query point (no point inside
  can dominate or be incomparable with it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MBR:
    """Axis-aligned box ``[lower, upper]`` in d dimensions."""

    lower: np.ndarray
    upper: np.ndarray

    @classmethod
    def of_point(cls, p) -> "MBR":
        arr = np.asarray(p, dtype=np.float64)
        return cls(arr.copy(), arr.copy())

    @classmethod
    def of_points(cls, pts) -> "MBR":
        """Tight box around an ``(n, d)`` point array."""
        arr = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        return cls(arr.min(axis=0), arr.max(axis=0))

    @classmethod
    def union(cls, boxes) -> "MBR":
        """Smallest box covering every box in ``boxes``."""
        boxes = list(boxes)
        if not boxes:
            raise ValueError("union of zero MBRs is undefined")
        lo = np.min([b.lower for b in boxes], axis=0)
        hi = np.max([b.upper for b in boxes], axis=0)
        return cls(lo, hi)

    @property
    def dim(self) -> int:
        return int(self.lower.shape[0])

    def expanded(self, p) -> "MBR":
        """The box grown to also cover point ``p``."""
        arr = np.asarray(p, dtype=np.float64)
        return MBR(np.minimum(self.lower, arr), np.maximum(self.upper, arr))

    def merged(self, other: "MBR") -> "MBR":
        return MBR(np.minimum(self.lower, other.lower),
                   np.maximum(self.upper, other.upper))

    def margin(self) -> float:
        """Sum of side lengths (used by split heuristics)."""
        return float(np.sum(self.upper - self.lower))

    def volume(self) -> float:
        return float(np.prod(self.upper - self.lower))

    def enlargement(self, p) -> float:
        """Volume increase needed to cover ``p`` (insertion heuristic)."""
        return self.expanded(p).volume() - self.volume()

    def contains_point(self, p, *, atol: float = 0.0) -> bool:
        arr = np.asarray(p, dtype=np.float64)
        return bool(np.all(arr >= self.lower - atol)
                    and np.all(arr <= self.upper + atol))

    def intersects(self, other: "MBR") -> bool:
        return bool(np.all(self.lower <= other.upper)
                    and np.all(other.lower <= self.upper))

    # ------------------------------------------------------------------
    # Pruning predicates for linear-preference traversals
    # ------------------------------------------------------------------

    def min_score(self, w) -> float:
        """Lower bound of ``f(w, x)`` over the box (``w`` non-negative)."""
        return float(np.dot(np.asarray(w, dtype=np.float64), self.lower))

    def max_score(self, w) -> float:
        """Upper bound of ``f(w, x)`` over the box (``w`` non-negative)."""
        return float(np.dot(np.asarray(w, dtype=np.float64), self.upper))

    def fully_dominated_by(self, q) -> bool:
        """True iff every point of the box is dominated by ``q``.

        Holds exactly when the box's *lower* corner is (weakly) worse
        than ``q`` in all dimensions and strictly worse in one.  Such a
        subtree can never contain a point dominating or incomparable
        with ``q`` and is pruned by ``FindIncom``.
        """
        qv = np.asarray(q, dtype=np.float64)
        return bool(np.all(self.lower >= qv) and np.any(self.lower > qv))

    def fully_dominates(self, q) -> bool:
        """True iff every point of the box dominates ``q``."""
        qv = np.asarray(q, dtype=np.float64)
        return bool(np.all(self.upper <= qv) and np.any(self.upper < qv))

    def may_dominate(self, q) -> bool:
        """True iff *some* point of the box could dominate ``q``."""
        qv = np.asarray(q, dtype=np.float64)
        return bool(np.all(self.lower <= qv))
