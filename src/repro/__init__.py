"""repro — Answering Why-not Questions on Reverse Top-k Queries.

A from-scratch Python reproduction of Gao, Liu, Chen, Zheng, Zhou,
*Answering Why-not Questions on Reverse Top-k Queries*, PVLDB 8(7),
2015, including every substrate the paper builds on: an R-tree, the
BRS branch-and-bound top-k engine, monochromatic and bichromatic
reverse top-k queries, a convex-QP interior-point solver, and the
WQRTQ why-not framework itself (MQP / MWK / MQWK).

Quickstart
----------
>>> import numpy as np
>>> from repro import WQRTQ
>>> P = np.array([[2, 1], [6, 3], [1, 9], [9, 3],
...               [7, 5], [5, 8], [3, 7]], dtype=float)
>>> W = np.array([[0.9, 0.1], [0.5, 0.5], [0.3, 0.7], [0.1, 0.9]])
>>> q = np.array([4.0, 4.0])
>>> engine = WQRTQ(P, q, k=3, weights=W)
>>> engine.reverse_topk().tolist()      # Tony and Anna like q
[1, 2]
>>> missing = engine.missing_weights()  # Julia and Kevin do not...
>>> result = engine.modify_query_point(missing)
>>> bool(result.penalty < 0.35)         # ...but a small nudge wins them
True
"""

from repro.core import (
    BatchReport,
    MQPResult,
    MQWKResult,
    MWKResult,
    PenaltyConfig,
    WQRTQ,
    WhyNotBatch,
    WhyNotExplanation,
    WhyNotQuery,
    explain_why_not,
    modify_query_point,
    modify_query_weights_and_k,
    modify_weights_and_k,
)
from repro.engine import DatasetContext
from repro.index import RTree
from repro.rtopk import brtopk_naive, brtopk_rta, mrtopk_2d
from repro.topk import BRSEngine, topk_scan

__version__ = "1.0.0"

__all__ = [
    "BRSEngine",
    "BatchReport",
    "DatasetContext",
    "MQPResult",
    "MQWKResult",
    "MWKResult",
    "PenaltyConfig",
    "RTree",
    "WQRTQ",
    "WhyNotBatch",
    "WhyNotExplanation",
    "WhyNotQuery",
    "brtopk_naive",
    "brtopk_rta",
    "explain_why_not",
    "modify_query_point",
    "modify_query_weights_and_k",
    "modify_weights_and_k",
    "mrtopk_2d",
    "topk_scan",
    "__version__",
]
