"""repro — Answering Why-not Questions on Reverse Top-k Queries.

A from-scratch Python reproduction of Gao, Liu, Chen, Zheng, Zhou,
*Answering Why-not Questions on Reverse Top-k Queries*, PVLDB 8(7),
2015, including every substrate the paper builds on: an R-tree, the
BRS branch-and-bound top-k engine, monochromatic and bichromatic
reverse top-k queries, a convex-QP interior-point solver, and the
WQRTQ why-not framework itself (MQP / MWK / MQWK).

Quickstart
----------
>>> import numpy as np
>>> from repro import Question, Session
>>> P = np.array([[2, 1], [6, 3], [1, 9], [9, 3],
...               [7, 5], [5, 8], [3, 7]], dtype=float)
>>> W = np.array([[0.9, 0.1], [0.5, 0.5], [0.3, 0.7], [0.1, 0.9]])
>>> q = np.array([4.0, 4.0])
>>> session = Session(P)
>>> session.reverse_topk(q, 3, weights=W).tolist()  # Tony and Anna
[1, 2]
>>> missing = session.missing_weights(q, 3, W)  # Julia and Kevin...
>>> answer = session.ask(Question(q=q, k=3, why_not=missing,
...                               algorithm="mqp"))
>>> answer.ok and answer.valid
True
>>> bool(answer.penalty < 0.35)   # ...a small nudge wins them over
True
>>> answer.to_dict()["schema_version"]   # wire-ready, versioned
5
"""

from repro.core import (
    SCHEMA_VERSION,
    AdmissionDecision,
    Answer,
    BatchReport,
    Budget,
    CostEstimate,
    ErrorInfo,
    Plan,
    MQPResult,
    MQWKResult,
    MWKResult,
    PenaltyConfig,
    Quality,
    Question,
    Session,
    WQRTQ,
    WhyNotBatch,
    WhyNotExplanation,
    WhyNotQuery,
    algorithm_names,
    explain_why_not,
    get_algorithm,
    modify_query_point,
    modify_query_weights_and_k,
    modify_weights_and_k,
    register_algorithm,
    summarize_answers,
)
from repro.data.catalogue import Catalogue, MutationRecord
from repro.engine import DatasetContext
from repro.index import RTree
from repro.rtopk import brtopk_naive, brtopk_rta, mrtopk_2d
from repro.topk import BRSEngine, topk_scan

__version__ = "1.0.0"

__all__ = [
    "AdmissionDecision",
    "Answer",
    "BRSEngine",
    "BatchReport",
    "Budget",
    "Catalogue",
    "CostEstimate",
    "DatasetContext",
    "ErrorInfo",
    "Plan",
    "MutationRecord",
    "MQPResult",
    "MQWKResult",
    "MWKResult",
    "PenaltyConfig",
    "Quality",
    "Question",
    "RTree",
    "SCHEMA_VERSION",
    "Session",
    "WQRTQ",
    "WhyNotBatch",
    "WhyNotExplanation",
    "WhyNotQuery",
    "algorithm_names",
    "brtopk_naive",
    "brtopk_rta",
    "explain_why_not",
    "get_algorithm",
    "modify_query_point",
    "modify_query_weights_and_k",
    "modify_weights_and_k",
    "mrtopk_2d",
    "register_algorithm",
    "summarize_answers",
    "topk_scan",
    "__version__",
]
