"""Core value types of the WQRTQ framework.

A :class:`WhyNotQuery` bundles everything the three refinement
algorithms consume — the dataset (with its R-tree), the query point,
``k``, and the why-not weighting vector set ``Wm`` — after validating
the paper's preconditions (every ``w in Wm`` must currently exclude
``q`` from its top-k).  The three result types mirror the outputs of
Algorithms 1–3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.engine.kernels import ranks_batch
from repro.geometry.vectors import is_valid_weight
from repro.index.rtree import RTree


@dataclass
class WhyNotQuery:
    """A validated why-not question on a reverse top-k query.

    Parameters
    ----------
    points:
        The product dataset ``P`` as an ``(n, d)`` array.
    q:
        The query point (the manufacturer's product), length ``d``.
    k:
        The reverse top-k parameter of the original query.
    why_not:
        The why-not weighting vector set ``Wm``, shape ``(m, d)``; each
        row must lie on the simplex.
    tree:
        Optional pre-built R-tree over ``points`` (built lazily when
        omitted).
    require_missing:
        When True (default) reject vectors that already contain ``q``
        in their reverse top-k result — the paper's precondition
        ``for all w in Wm: q not in TOPk(w)``.
    """

    points: np.ndarray
    q: np.ndarray
    k: int
    why_not: np.ndarray
    tree: RTree | None = None
    require_missing: bool = True

    def __post_init__(self) -> None:
        self.points = np.atleast_2d(np.asarray(self.points,
                                               dtype=np.float64))
        self.q = np.asarray(self.q, dtype=np.float64).reshape(-1)
        self.why_not = np.atleast_2d(np.asarray(self.why_not,
                                                dtype=np.float64))
        n, d = self.points.shape
        if self.q.shape[0] != d:
            raise ValueError("q dimensionality mismatch with dataset")
        if self.why_not.shape[1] != d:
            raise ValueError("Wm dimensionality mismatch with dataset")
        if not (1 <= self.k <= n):
            raise ValueError(f"k={self.k} out of range for |P|={n}")
        for row in self.why_not:
            if not is_valid_weight(row, atol=1e-6):
                raise ValueError(f"why-not vector {row} is not on the "
                                 "simplex")
        if np.any(self.q < 0) or np.any(self.points < 0):
            raise ValueError("scores assume non-negative coordinates")
        if self.require_missing:
            ranks = self.ranks()
            inside = np.nonzero(ranks <= self.k)[0]
            if len(inside):
                i = int(inside[0])
                raise ValueError(
                    f"why-not vector #{i} already has q in its "
                    f"top-{self.k}; not a valid why-not question")

    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])

    @property
    def n_why_not(self) -> int:
        return int(self.why_not.shape[0])

    @cached_property
    def rtree(self) -> RTree:
        """The R-tree over ``P`` (built on first use)."""
        if self.tree is None:
            self.tree = RTree(self.points)
        return self.tree

    def ranks(self) -> np.ndarray:
        """Actual rank of ``q`` under every why-not vector (Lemma 4).

        One batched kernel call
        (:func:`repro.engine.kernels.ranks_batch`) instead of a
        progressive search per vector.
        """
        return ranks_batch(self.why_not, self.points, self.q)


@dataclass(frozen=True)
class MQPResult:
    """Output of Algorithm 1: the modified query point."""

    q_refined: np.ndarray
    penalty: float
    kth_points: np.ndarray     # ids of the top-k-th point per why-not w
    kth_scores: np.ndarray
    qp_iterations: int
    kkt_residual: float


@dataclass(frozen=True)
class MWKResult:
    """Output of Algorithm 2: modified why-not vectors and k."""

    weights_refined: np.ndarray
    k_refined: int
    penalty: float
    delta_k: int
    delta_w: float
    k_max: int
    samples_examined: int
    candidates_evaluated: int


@dataclass(frozen=True)
class MQWKResult:
    """Output of Algorithm 3: joint modification of q, Wm and k."""

    q_refined: np.ndarray
    weights_refined: np.ndarray
    k_refined: int
    penalty: float
    q_penalty_share: float
    wk_penalty_share: float
    q_samples: int = 0
    mqp: MQPResult | None = field(default=None, compare=False)
    mwk: MWKResult | None = field(default=None, compare=False)
