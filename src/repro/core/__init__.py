"""WQRTQ core — the paper's primary contribution.

Public surface:

* :class:`~repro.core.session.Session` — the unified facade
  (interactive + batch + registry-backed serving).
* :class:`~repro.core.protocol.Question` /
  :class:`~repro.core.protocol.Answer` /
  :class:`~repro.core.protocol.ErrorInfo` — the typed, versioned
  request/response schema shared by library, CLI and wire.
* :mod:`~repro.core.registry` — the pluggable algorithm registry
  (:func:`register_algorithm`, :func:`algorithm_names`).
* :class:`~repro.core.types.WhyNotQuery` and the three result types.
* The three refinement algorithms as free functions
  (:func:`modify_query_point`, :func:`modify_weights_and_k`,
  :func:`modify_query_weights_and_k`).
* The penalty models of Equations 1/3/4/5.
* :func:`explain_why_not` — aspect (i) of a why-not question.
* Deprecated shims: :class:`~repro.core.framework.WQRTQ`,
  :class:`~repro.core.batch.WhyNotBatch`.
"""

from repro.core.audit import (
    RefinementAudit,
    audit_refinement,
    audit_result,
)
from repro.core.batch import BatchReport, WhyNotBatch
from repro.core.exact import ExactMWKResult, exact_mwk_2d
from repro.core.explain import WhyNotExplanation, explain_why_not
from repro.core.framework import WQRTQ
from repro.core.helo import compose_per_vector, modify_single_weight
from repro.core.incomparable import (
    IncomparableCache,
    IncomparableResult,
    find_incomparable,
)
from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k
from repro.core.penalty import (
    DEFAULT_PENALTY,
    PenaltyConfig,
    penalty_joint,
    penalty_query_point,
    penalty_weights_k,
)
from repro.core.protocol import (
    SCHEMA_VERSION,
    AdmissionDecision,
    Answer,
    Budget,
    CostEstimate,
    ErrorInfo,
    Plan,
    Quality,
    Question,
    summarize_answers,
)
from repro.core.registry import (
    AlgorithmSpec,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.safe_region import (
    is_safe,
    safe_region_polygon,
    safe_region_system,
)
from repro.core.session import Session
from repro.core.types import MQPResult, MQWKResult, MWKResult, WhyNotQuery

__all__ = [
    "AdmissionDecision",
    "AlgorithmSpec",
    "Answer",
    "BatchReport",
    "Budget",
    "CostEstimate",
    "ErrorInfo",
    "Plan",
    "Quality",
    "Question",
    "SCHEMA_VERSION",
    "Session",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "summarize_answers",
    "unregister_algorithm",
    "DEFAULT_PENALTY",
    "ExactMWKResult",
    "IncomparableCache",
    "RefinementAudit",
    "WhyNotBatch",
    "audit_refinement",
    "audit_result",
    "compose_per_vector",
    "exact_mwk_2d",
    "modify_single_weight",
    "IncomparableResult",
    "MQPResult",
    "MQWKResult",
    "MWKResult",
    "PenaltyConfig",
    "WQRTQ",
    "WhyNotExplanation",
    "WhyNotQuery",
    "explain_why_not",
    "find_incomparable",
    "is_safe",
    "modify_query_point",
    "modify_query_weights_and_k",
    "modify_weights_and_k",
    "penalty_joint",
    "penalty_query_point",
    "penalty_weights_k",
    "safe_region_polygon",
    "safe_region_system",
]
