"""Typed, versioned Question/Answer protocol — the public API schema.

Every front door of the repro — the :class:`~repro.core.session.Session`
facade, the CLI and the HTTP service — speaks exactly the two value
types defined here:

* :class:`Question` — a frozen, construction-validated why-not
  question: query point ``q``, ``k``, the why-not weight set, the
  algorithm name (resolved against the
  :mod:`~repro.core.registry` algorithm registry) and its per-algorithm
  ``options``;
* :class:`Answer` — the unified response envelope over the three
  refinement result types, carrying the audit penalty/validity, the
  per-question timing and — for failed questions — a structured
  :class:`ErrorInfo` instead of a class-name-prefixed string.

Schema version 3 adds the anytime-execution contract: a
:class:`Question` may carry a :class:`Budget` (sample budget,
deadline, target-penalty tolerance) and every anytime
:class:`Answer` carries :class:`Quality` metadata (samples examined,
converged flag, refinement round).

Both round-trip losslessly through ``to_dict`` → ``json`` →
``from_dict`` under an explicit :data:`SCHEMA_VERSION`, including
failed items and non-finite penalties (``NaN`` penalties serialize as
``null``, infinities as the strings ``"inf"`` / ``"-inf"`` — plain
JSON has no spelling for either).  The HTTP server and client ship
these dicts verbatim, so the wire format has exactly one
encoder/decoder, defined here.

Validation happens at *construction* time with actionable messages
(``k`` must be a positive integer, why-not rows must lie on the
simplex, dimensions must agree, options must be knobs the chosen
algorithm declares) — catalogue-dependent checks (``k <= |P|``, "is
the vector actually missing?") still happen at answer time, where the
dataset is known, and surface as failed :class:`Answer`\\ s.
"""

from __future__ import annotations

import math
import types
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.incomparable import IncomparableResult
from repro.core.registry import get_algorithm
from repro.data.io import result_from_dict, result_to_dict
from repro.geometry.dominance import dominated_by_mask, dominates_mask
from repro.geometry.vectors import is_valid_weight

#: Version of the dict/wire encoding.  Bump on any change to the
#: field set or value encodings; ``from_dict`` rejects payloads
#: stamped with an unsupported version instead of mis-decoding them.
#:
#: Version history:
#:
#: * **1** — the original typed schema.
#: * **2** — ``Answer`` payloads carry ``catalogue_version``, the
#:   version of the catalogue snapshot they were answered against
#:   (0 for standalone, non-catalogue contexts).
#: * **3** — anytime execution: ``Question`` payloads may carry a
#:   ``budget`` (:class:`Budget` — sample budget, deadline,
#:   target-penalty tolerance) and ``Answer`` payloads carry
#:   ``quality`` (:class:`Quality` — samples examined, converged
#:   flag, refinement round), ``null`` for run-to-completion answers.
#: * **4** — live monitoring: the watch subscription surface pushes
#:   :class:`WatchEvent` envelopes (watch id, monotone ``seq``
#:   cursor, event ``kind``, the refreshed ``Answer`` payload).  No
#:   existing payload changed shape — v4 is v3 plus one new
#:   envelope type, so v3 peers interoperate on everything but
#:   ``/watches``.
#: * **5** — cost-based planning and admission control:
#:   ``Question`` payloads may carry ``priority`` (weighted
#:   admission ordering, default 0) and ``tenant`` (quota
#:   accounting key, default ``null``), and three new envelope
#:   types exist — :class:`CostEstimate` (the analytic cost-model
#:   prediction), :class:`Plan` (the chosen execution path with its
#:   estimate, rendered by ``EXPLAIN``) and
#:   :class:`AdmissionDecision` (the typed body of a 429
#:   rejection).  ``Answer`` payloads are field-identical to v4, so
#:   v4 peers interoperate on everything but ``/explain`` and the
#:   admission metadata.
SCHEMA_VERSION = 5

#: Versions this side can still decode.  Version-1 payloads simply
#: lack ``catalogue_version``; version-1/-2 payloads lack
#: ``budget``/``quality``; version-<5 payloads lack
#: ``priority``/``tenant``; decoding defaults them to 0 / ``None``,
#: which is exactly what those producers meant (one immutable
#: snapshot, run-to-completion execution, neutral priority).
#: Version-3/-4 payloads are field-identical to version 5 for every
#: pre-planner type.
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2, 3, 4, SCHEMA_VERSION})

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "AdmissionDecision",
    "Answer",
    "Budget",
    "CostEstimate",
    "ErrorInfo",
    "Plan",
    "Precompute",
    "Quality",
    "Question",
    "ShardPartial",
    "WatchEvent",
    "check_schema_version",
    "compute_shard_partial",
    "merge_shard_partials",
    "shard_plan",
    "shard_ranges",
    "summarize_answers",
]


def check_schema_version(payload: Mapping, *,
                         where: str = "payload") -> None:
    """Reject a dict stamped with a schema version we do not speak.

    A missing stamp is accepted (pre-schema producers), and so is any
    version in :data:`SUPPORTED_SCHEMA_VERSIONS` — the current
    encoding is a strict superset of version 1.  Anything else is an
    error — silently decoding a future encoding risks wrong answers,
    not just crashes.
    """
    version = payload.get("schema_version")
    if version is not None and version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(
            str(v) for v in sorted(SUPPORTED_SCHEMA_VERSIONS))
        raise ValueError(
            f"unsupported schema_version {version!r} in {where} "
            f"(this side speaks {supported})")


def _encode_penalty(value: float):
    """JSON-safe penalty: ``NaN`` → ``None``, ``±inf`` → strings."""
    value = float(value)
    if math.isnan(value):
        return None
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_penalty(value) -> float:
    if value is None:
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    raise ValueError(f"penalty must be a number, null, 'inf' or "
                     f"'-inf', got {value!r}")


@dataclass(frozen=True)
class ErrorInfo:
    """Structured failure description for one question.

    ``type`` is the exception class name, ``message`` the
    human-readable text, and ``category`` the machine-matchable
    channel: ``"validation"`` for expected validation failures (any
    ``ValueError``, including non-builtin subclasses such as
    ``numpy.linalg.LinAlgError``) and ``"internal"`` for everything
    else.  The category is recorded at capture time — a type *name*
    alone cannot tell a ``ValueError`` subclass from an unrelated
    class once it crosses the wire.
    """

    type: str
    message: str
    category: str = "internal"     # "validation" | "internal"

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorInfo":
        return cls(type=type(exc).__name__, message=str(exc),
                   category=("validation"
                             if isinstance(exc, ValueError)
                             else "internal"))

    @property
    def as_legacy_string(self) -> str:
        """The pre-schema string form (bare message for validation
        failures, ``"Type: message"`` otherwise) kept for the
        deprecated ``ExecutionItem.error`` field."""
        if self.category == "validation":
            return self.message
        return f"{self.type}: {self.message}"

    def to_dict(self) -> dict:
        return {"type": self.type, "message": self.message,
                "category": self.category}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ErrorInfo":
        if not isinstance(payload, Mapping):
            raise ValueError("error payload must be a JSON object")
        type_name = str(payload.get("type", ""))
        category = payload.get("category")
        if category not in ("validation", "internal"):
            # Pre-category producer: infer from builtin type names.
            import builtins

            exc_type = getattr(builtins, type_name, None)
            category = ("validation"
                        if isinstance(exc_type, type)
                        and issubclass(exc_type, ValueError)
                        else "internal")
        return cls(type=type_name,
                   message=str(payload.get("message", "")),
                   category=category)


@dataclass(frozen=True)
class Budget:
    """Execution budget for one question — the anytime contract.

    All three limits are optional and combine conjunctively: the
    executor refines the answer in chunks and stops at the first
    limit hit, always returning the best answer found so far.

    Parameters
    ----------
    sample_budget:
        Cap on the total samples examined (weight samples for MWK,
        query-point candidates for MQWK; MQP is exact and converges
        in its first round regardless).  ``None`` = the algorithm's
        own ``sample_size`` option decides.
    deadline_ms:
        Soft wall-clock deadline in milliseconds.  Refinement chunks
        are sized from the observed sampling rate so the loop lands
        near the deadline instead of overshooting; at least one
        refinement round always runs, so a budgeted question never
        comes back empty.
    target_penalty_tolerance:
        Early-exit threshold: refinement stops once the audited
        penalty is at or below this value ("good enough").
    """

    sample_budget: int | None = None
    deadline_ms: float | None = None
    target_penalty_tolerance: float | None = None

    def __post_init__(self) -> None:
        if self.sample_budget is not None:
            try:
                budget = int(self.sample_budget)
                if float(self.sample_budget) != budget:
                    raise ValueError
            except (TypeError, ValueError):
                raise ValueError(
                    f"sample_budget must be a positive integer or "
                    f"None, got {self.sample_budget!r}") from None
            if budget < 1:
                raise ValueError(f"sample_budget must be >= 1, got "
                                 f"{budget}")
            object.__setattr__(self, "sample_budget", budget)
        if self.deadline_ms is not None:
            deadline = float(self.deadline_ms)
            if not math.isfinite(deadline) or deadline <= 0:
                raise ValueError(f"deadline_ms must be a positive "
                                 f"finite number, got "
                                 f"{self.deadline_ms!r}")
            object.__setattr__(self, "deadline_ms", deadline)
        if self.target_penalty_tolerance is not None:
            tol = float(self.target_penalty_tolerance)
            if not math.isfinite(tol) or tol < 0:
                raise ValueError(
                    f"target_penalty_tolerance must be a non-negative "
                    f"finite number, got "
                    f"{self.target_penalty_tolerance!r}")
            object.__setattr__(self, "target_penalty_tolerance", tol)

    @property
    def is_unbounded(self) -> bool:
        """True when no limit is set (run-to-completion semantics)."""
        return (self.sample_budget is None and self.deadline_ms is None
                and self.target_penalty_tolerance is None)

    def to_dict(self) -> dict:
        return {"sample_budget": self.sample_budget,
                "deadline_ms": self.deadline_ms,
                "target_penalty_tolerance":
                    self.target_penalty_tolerance}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Budget":
        if not isinstance(payload, Mapping):
            raise ValueError("budget payload must be a JSON object")
        unknown = sorted(set(payload) - {"sample_budget", "deadline_ms",
                                         "target_penalty_tolerance"})
        if unknown:
            raise ValueError(f"budget has unknown field(s): "
                             f"{', '.join(unknown)}")
        return cls(
            sample_budget=payload.get("sample_budget"),
            deadline_ms=payload.get("deadline_ms"),
            target_penalty_tolerance=payload.get(
                "target_penalty_tolerance"))


@dataclass(frozen=True)
class Quality:
    """How an anytime answer was produced (schema version 3).

    ``samples_examined`` counts the algorithm's own progress unit
    (weight samples for MWK, query-point candidates for MQWK);
    ``converged`` says whether refinement ran to its natural end
    (sample target reached, tolerance met, or the algorithm is exact)
    rather than being cut off by a deadline, budget or cancellation;
    ``rounds`` is the number of refinement rounds behind the answer.
    """

    samples_examined: int = 0
    converged: bool = True
    rounds: int = 1

    def to_dict(self) -> dict:
        return {"samples_examined": int(self.samples_examined),
                "converged": bool(self.converged),
                "rounds": int(self.rounds)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Quality":
        if not isinstance(payload, Mapping):
            raise ValueError("quality payload must be a JSON object")
        return cls(
            samples_examined=int(payload.get("samples_examined", 0)),
            converged=bool(payload.get("converged", True)),
            rounds=int(payload.get("rounds", 1)))


def _readonly(array: np.ndarray) -> np.ndarray:
    out = np.array(array, dtype=np.float64, copy=True)
    out.setflags(write=False)
    return out


@dataclass(frozen=True, eq=False)
class Question:
    """One validated, immutable why-not question.

    Parameters
    ----------
    q:
        The query point (the manufacturer's product) as a flat list
        of non-negative finite coordinates.
    k:
        The reverse top-k parameter, a positive integer.  The
        catalogue-dependent upper bound (``k <= |P|``) is enforced at
        answer time.
    why_not:
        The why-not weighting vectors, shape ``(m, d)`` matching
        ``q``; every row must lie on the probability simplex.
    algorithm:
        Name of a registered refinement algorithm (default
        ``"mqp"``); resolved against the registry at construction.
    options:
        Per-algorithm knobs (e.g. ``{"sample_size": 400}`` for MWK);
        keys are validated against the algorithm's declared
        ``option_names``.
    budget:
        Optional :class:`Budget` (or its dict form) requesting
        anytime execution: the executor refines the answer in chunks
        and stops at the first limit hit.  ``None`` (default) runs
        the algorithm to completion exactly as before.
    id:
        Optional caller-chosen correlation id, echoed on the
        :class:`Answer`.
    priority:
        Admission priority (schema v5): higher values are scheduled
        first by the service admission controller.  Neutral default
        0; has no effect on library execution or on the Answer.
    tenant:
        Optional tenant key (schema v5) for per-tenant quota
        accounting at the service tier; ``None`` means the shared
        anonymous bucket.
    """

    q: np.ndarray
    k: int
    why_not: np.ndarray
    algorithm: str = "mqp"
    options: Mapping[str, object] = field(default_factory=dict)
    budget: Budget | None = None
    id: str | None = None
    priority: int = 0
    tenant: str | None = None

    def __post_init__(self) -> None:
        try:
            q = np.asarray(self.q, dtype=np.float64)
        except (TypeError, ValueError):
            raise ValueError(f"q must be a numeric coordinate list, "
                             f"got {self.q!r}") from None
        if q.ndim != 1 or q.size == 0:
            raise ValueError("q must be a non-empty flat coordinate "
                             f"list, got shape {q.shape}")
        if not np.all(np.isfinite(q)):
            raise ValueError(f"q must contain finite coordinates, "
                             f"got {q.tolist()}")
        if np.any(q < 0):
            raise ValueError("q must be non-negative (top-k scores "
                             f"assume non-negative coordinates), got "
                             f"{q.tolist()}")

        try:
            k = int(self.k)
            if float(self.k) != k:   # reject silent truncation (2.9)
                raise ValueError
        except (TypeError, ValueError):
            raise ValueError(f"k must be a positive integer, got "
                             f"{self.k!r}") from None
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")

        try:
            wm = np.atleast_2d(np.asarray(self.why_not,
                                          dtype=np.float64))
        except (TypeError, ValueError):
            raise ValueError(f"why_not must be a numeric (m, d) "
                             f"weight list, got {self.why_not!r}") \
                from None
        if wm.ndim != 2 or wm.shape[0] == 0:
            raise ValueError("why_not must be a non-empty (m, d) "
                             f"weight list, got shape {wm.shape}")
        if wm.shape[1] != q.shape[0]:
            raise ValueError(
                f"why_not must be shaped (m, {q.shape[0]}) to match "
                f"q's dimensionality, got {wm.shape[0]}x{wm.shape[1]}")
        for i, row in enumerate(wm):
            if not is_valid_weight(row, atol=1e-6):
                raise ValueError(
                    f"why-not vector #{i} = {row.tolist()} is not on "
                    f"the simplex (non-negative weights summing to 1; "
                    f"sum = {float(row.sum()):.6f})")

        spec = get_algorithm(self.algorithm)   # raises with the list

        if not isinstance(self.options, Mapping):
            raise ValueError(f"options must be a mapping, got "
                             f"{type(self.options).__name__}")
        options = dict(self.options)
        unknown = sorted(key for key in options
                         if key not in spec.option_names)
        if unknown:
            accepted = ", ".join(spec.option_names) or "<none>"
            raise ValueError(
                f"unknown option(s) {unknown} for algorithm "
                f"{spec.name!r} (accepted: {accepted})")

        budget = self.budget
        if budget is not None and not isinstance(budget, Budget):
            if not isinstance(budget, Mapping):
                raise ValueError(f"budget must be a Budget, a mapping "
                                 f"or None, got {budget!r}")
            budget = Budget.from_dict(budget)
        if budget is not None and budget.is_unbounded:
            budget = None   # an empty budget means run-to-completion

        if self.id is not None and not isinstance(self.id, str):
            raise ValueError(f"id must be a string or None, got "
                             f"{self.id!r}")

        try:
            priority = int(self.priority)
            if isinstance(self.priority, bool) or \
                    float(self.priority) != priority:
                raise ValueError
        except (TypeError, ValueError):
            raise ValueError(f"priority must be an integer, got "
                             f"{self.priority!r}") from None

        if self.tenant is not None and not isinstance(self.tenant, str):
            raise ValueError(f"tenant must be a string or None, got "
                             f"{self.tenant!r}")

        object.__setattr__(self, "priority", priority)
        object.__setattr__(self, "budget", budget)
        object.__setattr__(self, "q", _readonly(q))
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "why_not", _readonly(wm))
        object.__setattr__(self, "algorithm", spec.name)
        # A read-only view: ``frozen=True`` only blocks attribute
        # rebinding, and a mutable dict would let callers smuggle in
        # option keys that skipped the validation above.
        object.__setattr__(self, "options",
                           types.MappingProxyType(options))

    # -- derived -------------------------------------------------------

    @property
    def dim(self) -> int:
        return int(self.q.shape[0])

    @property
    def n_why_not(self) -> int:
        return int(self.why_not.shape[0])

    # -- wire schema ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "id": self.id,
            "algorithm": self.algorithm,
            "q": self.q.tolist(),
            "k": self.k,
            "why_not": self.why_not.tolist(),
            "options": dict(self.options),
            "budget": (None if self.budget is None
                       else self.budget.to_dict()),
            "priority": self.priority,
            "tenant": self.tenant,
        }

    #: The exact key set ``to_dict`` writes; ``from_dict`` rejects
    #: anything else so a misspelled field (e.g. ``"optons"``) cannot
    #: silently decode into a different question.
    _FIELDS = frozenset({"schema_version", "id", "algorithm", "q",
                         "k", "why_not", "options", "budget",
                         "priority", "tenant"})

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Question":
        if not isinstance(payload, Mapping):
            raise ValueError("question payload must be a JSON object")
        check_schema_version(payload, where="question")
        missing = [key for key in ("q", "k", "why_not")
                   if key not in payload]
        if missing:
            raise ValueError(f"question is missing field(s): "
                             f"{', '.join(missing)}")
        unknown = sorted(set(payload) - cls._FIELDS)
        if unknown:
            raise ValueError(f"question has unknown field(s): "
                             f"{', '.join(unknown)}")
        return cls(q=payload["q"], k=payload["k"],
                   why_not=payload["why_not"],
                   algorithm=payload.get("algorithm", "mqp"),
                   options=payload.get("options") or {},
                   budget=payload.get("budget"),
                   id=payload.get("id"),
                   priority=payload.get("priority", 0),
                   tenant=payload.get("tenant"))

    @classmethod
    def from_legacy(cls, q, k, why_not, *, algorithm: str = "mqp",
                    sample_size: int | None = None,
                    id: str | None = None) -> "Question":
        """Upgrade a pre-schema question to a typed Question.

        The single place the old calling conventions — a raw
        ``(q, k, Wm)`` triple plus sibling ``algorithm`` /
        ``sample_size`` arguments — are mapped onto the typed schema:
        ``sample_size`` becomes an option only for algorithms that
        declare the knob (MQP historically ignored it).
        """
        spec = get_algorithm(algorithm)
        options = ({"sample_size": int(sample_size)}
                   if sample_size is not None
                   and "sample_size" in spec.option_names else {})
        return cls(q=q, k=k, why_not=why_not, algorithm=spec.name,
                   options=options, id=id)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Question):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash((self.q.tobytes(), self.k, self.why_not.tobytes(),
                     self.algorithm, tuple(sorted(self.options.items())),
                     self.budget, self.id, self.priority, self.tenant))

    def __reduce__(self):
        # ``options`` is a mappingproxy (see ``__post_init__``), which
        # the default dataclass pickling chokes on; rebuild through the
        # constructor so worker IPC re-validates exactly once.
        return (Question, (np.asarray(self.q), self.k,
                           np.asarray(self.why_not), self.algorithm,
                           dict(self.options), self.budget, self.id,
                           self.priority, self.tenant))


@dataclass(frozen=True, eq=False)
class Answer:
    """The unified response envelope for one answered question.

    ``result`` holds one of the three typed refinement results (or
    ``None`` when ``error`` is set); ``penalty``/``valid`` come from
    the independent audit of that result; ``elapsed`` is the answer
    time in seconds.  Failed questions carry a structured
    :class:`ErrorInfo` and a ``NaN`` penalty.

    ``catalogue_version`` stamps the catalogue snapshot the answer
    was computed against (schema version 2): a client interleaving
    queries with mutations can tell exactly which state of the data
    each answer reflects.  Standalone contexts — and all version-1
    payloads — carry 0.

    ``quality`` (schema version 3) describes how an anytime answer
    was produced — samples examined, converged flag, refinement
    round.  Run-to-completion answers (and all version-1/-2
    payloads) carry ``None``.
    """

    index: int
    algorithm: str
    result: object          # MQPResult | MWKResult | MQWKResult | None
    penalty: float
    valid: bool
    error: ErrorInfo | None = None
    elapsed: float = 0.0
    question_id: str | None = None
    catalogue_version: int = 0
    quality: Quality | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    # -- wire schema ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "id": self.question_id,
            "index": int(self.index),
            "algorithm": self.algorithm,
            "valid": bool(self.valid),
            "penalty": _encode_penalty(self.penalty),
            "error": None if self.error is None else
                     self.error.to_dict(),
            "elapsed": float(self.elapsed),
            "catalogue_version": int(self.catalogue_version),
            "quality": None if self.quality is None else
                       self.quality.to_dict(),
            "result": None if self.result is None else
                      result_to_dict(self.result),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Answer":
        if not isinstance(payload, Mapping):
            raise ValueError("answer payload must be a JSON object")
        check_schema_version(payload, where="answer")
        error = payload.get("error")
        result = payload.get("result")
        quality = payload.get("quality")
        return cls(
            index=int(payload.get("index", 0)),
            algorithm=str(payload.get("algorithm", "")),
            result=None if result is None else result_from_dict(result),
            penalty=_decode_penalty(payload.get("penalty")),
            valid=bool(payload.get("valid", False)),
            error=None if error is None else ErrorInfo.from_dict(error),
            elapsed=float(payload.get("elapsed", 0.0)),
            question_id=payload.get("id"),
            catalogue_version=int(payload.get("catalogue_version", 0)),
            quality=(None if quality is None
                     else Quality.from_dict(quality)))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Answer):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    __hash__ = None


#: Event kinds a watch stream may carry (schema version 4).
WATCH_EVENT_KINDS = ("answer", "end")


@dataclass(frozen=True)
class WatchEvent:
    """One entry of a watch's event stream (schema version 4).

    ``seq`` is the watch-local cursor: strictly monotone from 0 (the
    registration answer), what long-poll ``cursor=`` and SSE
    ``Last-Event-ID`` resume from.  ``kind`` is ``"answer"`` for a
    refreshed :class:`Answer` (carried in ``answer``, byte-identical
    to a fresh ``Session.ask`` at ``catalogue_version``) or
    ``"end"`` — the terminal event a deleted watch or a draining
    server pushes (``answer`` is ``None``); nothing follows an
    ``end``.
    """

    watch_id: str
    seq: int
    kind: str
    catalogue_version: int
    answer: Answer | None = None

    def __post_init__(self) -> None:
        if self.kind not in WATCH_EVENT_KINDS:
            kinds = ", ".join(WATCH_EVENT_KINDS)
            raise ValueError(f"watch event kind must be one of "
                             f"{kinds}, got {self.kind!r}")
        if int(self.seq) < 0:
            raise ValueError(f"watch event seq must be >= 0, got "
                             f"{self.seq!r}")
        if (self.kind == "answer") != (self.answer is not None):
            raise ValueError("'answer' events carry an Answer; "
                             "'end' events carry none")
        object.__setattr__(self, "seq", int(self.seq))
        object.__setattr__(self, "catalogue_version",
                           int(self.catalogue_version))

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "watch_id": self.watch_id,
            "seq": self.seq,
            "kind": self.kind,
            "catalogue_version": self.catalogue_version,
            "answer": (None if self.answer is None
                       else self.answer.to_dict()),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "WatchEvent":
        if not isinstance(payload, Mapping):
            raise ValueError("watch event payload must be a JSON "
                             "object")
        check_schema_version(payload, where="watch event")
        answer = payload.get("answer")
        return cls(
            watch_id=str(payload.get("watch_id", "")),
            seq=int(payload.get("seq", 0)),
            kind=str(payload.get("kind", "")),
            catalogue_version=int(payload.get("catalogue_version",
                                              0)),
            answer=(None if answer is None
                    else Answer.from_dict(answer)))


@dataclass(frozen=True)
class CostEstimate:
    """The cost model's prediction for one Question (schema v5).

    Produced by :class:`repro.planner.model.CostModel` before
    execution: the expected sample count, refinement chunk count,
    wall latency and peak working memory for running ``algorithm``
    against an ``n`` x ``d`` catalogue with the question's ``k`` and
    ``m`` why-not rows.  ``calibrated`` says whether the latency
    coefficient has been fit from at least
    ``CALIBRATION_MIN_OBSERVATIONS`` real executions
    (``observations`` of them) or is still the analytic prior.
    """

    algorithm: str
    n: int
    d: int
    k: int
    m: int
    est_samples: int
    est_chunks: int
    est_latency_ms: float
    est_peak_memory_bytes: int
    calibrated: bool = False
    observations: int = 0

    def __post_init__(self) -> None:
        for name in ("n", "d", "k", "m", "est_samples", "est_chunks",
                     "est_peak_memory_bytes", "observations"):
            object.__setattr__(self, name, int(getattr(self, name)))
        latency = float(self.est_latency_ms)
        if not math.isfinite(latency) or latency < 0:
            raise ValueError(f"est_latency_ms must be finite and "
                             f">= 0, got {self.est_latency_ms!r}")
        object.__setattr__(self, "est_latency_ms", latency)
        object.__setattr__(self, "calibrated", bool(self.calibrated))

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "d": self.d,
            "k": self.k,
            "m": self.m,
            "est_samples": self.est_samples,
            "est_chunks": self.est_chunks,
            "est_latency_ms": self.est_latency_ms,
            "est_peak_memory_bytes": self.est_peak_memory_bytes,
            "calibrated": self.calibrated,
            "observations": self.observations,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CostEstimate":
        if not isinstance(payload, Mapping):
            raise ValueError("cost estimate payload must be a JSON "
                             "object")
        return cls(
            algorithm=str(payload.get("algorithm", "")),
            n=int(payload.get("n", 0)),
            d=int(payload.get("d", 0)),
            k=int(payload.get("k", 0)),
            m=int(payload.get("m", 0)),
            est_samples=int(payload.get("est_samples", 0)),
            est_chunks=int(payload.get("est_chunks", 0)),
            est_latency_ms=float(payload.get("est_latency_ms", 0.0)),
            est_peak_memory_bytes=int(
                payload.get("est_peak_memory_bytes", 0)),
            calibrated=bool(payload.get("calibrated", False)),
            observations=int(payload.get("observations", 0)))


#: Execution paths a :class:`Plan` can choose: in-process session
#: execution, whole questions fanned out to pool workers, or
#: scatter-gather of one question across catalogue shards.
PLAN_PATHS = ("session", "worker", "scatter-gather")


@dataclass(frozen=True)
class Plan:
    """The chosen execution path for one Question (schema v5).

    What ``EXPLAIN`` (``POST /explain`` / ``wqrtq explain`` /
    ``Session.explain_plan``) returns: the path the service would
    take (``session`` in-process, ``worker`` on the pool, or
    ``scatter-gather`` across shards), the anytime ``chunk_schedule``
    the executor is expected to run, the :class:`CostEstimate` and
    the :class:`Quality` the answer is expected to report.  Rendered
    to Impala-style text by
    :func:`repro.planner.plan.render_plan`.
    """

    catalogue: str
    catalogue_version: int
    algorithm: str
    path: str
    workers: int
    shards: int
    chunk_schedule: tuple
    cost: CostEstimate
    expected_quality: Quality
    question_id: str | None = None

    def __post_init__(self) -> None:
        if self.path not in PLAN_PATHS:
            paths = ", ".join(PLAN_PATHS)
            raise ValueError(f"plan path must be one of {paths}, "
                             f"got {self.path!r}")
        object.__setattr__(self, "catalogue_version",
                           int(self.catalogue_version))
        object.__setattr__(self, "workers", int(self.workers))
        object.__setattr__(self, "shards", int(self.shards))
        object.__setattr__(self, "chunk_schedule",
                           tuple(int(c) for c in self.chunk_schedule))

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "catalogue": self.catalogue,
            "catalogue_version": self.catalogue_version,
            "algorithm": self.algorithm,
            "path": self.path,
            "workers": self.workers,
            "shards": self.shards,
            "chunk_schedule": list(self.chunk_schedule),
            "cost": self.cost.to_dict(),
            "expected_quality": self.expected_quality.to_dict(),
            "question_id": self.question_id,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Plan":
        if not isinstance(payload, Mapping):
            raise ValueError("plan payload must be a JSON object")
        check_schema_version(payload, where="plan")
        question_id = payload.get("question_id")
        return cls(
            catalogue=str(payload.get("catalogue", "")),
            catalogue_version=int(payload.get("catalogue_version", 0)),
            algorithm=str(payload.get("algorithm", "")),
            path=str(payload.get("path", "session")),
            workers=int(payload.get("workers", 0)),
            shards=int(payload.get("shards", 1)),
            chunk_schedule=tuple(payload.get("chunk_schedule") or ()),
            cost=CostEstimate.from_dict(payload.get("cost") or {}),
            expected_quality=Quality.from_dict(
                payload.get("expected_quality") or {}),
            question_id=(None if question_id is None
                         else str(question_id)))


#: Reasons an :class:`AdmissionDecision` can carry.  ``ok`` admits;
#: ``deadline`` rejects a question whose estimated latency exceeds
#: its own ``deadline_ms``; ``quota`` sheds past a tenant's token
#: bucket; ``queue-full`` sheds past the bounded priority queue.
ADMISSION_REASONS = ("ok", "deadline", "quota", "queue-full")


@dataclass(frozen=True)
class AdmissionDecision:
    """The admission controller's verdict for one request (schema v5).

    Admitted requests proceed to execution unchanged; rejected ones
    become typed 429 responses carrying this payload — ``reason``
    says which policy fired, ``estimated_ms``/``deadline_ms`` the
    deadline math that failed (when ``reason`` is ``deadline``), and
    ``retry_after_ms`` the shed-side hint mirrored into the
    ``Retry-After`` header (``None`` when retrying cannot help, e.g.
    an unmeetable deadline).
    """

    admitted: bool
    reason: str
    detail: str = ""
    estimated_ms: float | None = None
    deadline_ms: float | None = None
    retry_after_ms: float | None = None
    priority: int = 0
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.reason not in ADMISSION_REASONS:
            reasons = ", ".join(ADMISSION_REASONS)
            raise ValueError(f"admission reason must be one of "
                             f"{reasons}, got {self.reason!r}")
        if self.admitted != (self.reason == "ok"):
            raise ValueError("admitted decisions carry reason 'ok'; "
                             "rejections carry the policy that fired")
        for name in ("estimated_ms", "deadline_ms", "retry_after_ms"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, float(value))
        object.__setattr__(self, "admitted", bool(self.admitted))
        object.__setattr__(self, "priority", int(self.priority))

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "admitted": self.admitted,
            "reason": self.reason,
            "detail": self.detail,
            "estimated_ms": self.estimated_ms,
            "deadline_ms": self.deadline_ms,
            "retry_after_ms": self.retry_after_ms,
            "priority": self.priority,
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AdmissionDecision":
        if not isinstance(payload, Mapping):
            raise ValueError("admission payload must be a JSON object")
        check_schema_version(payload, where="admission decision")
        tenant = payload.get("tenant")
        return cls(
            admitted=bool(payload.get("admitted", False)),
            reason=str(payload.get("reason", "")),
            detail=str(payload.get("detail", "")),
            estimated_ms=payload.get("estimated_ms"),
            deadline_ms=payload.get("deadline_ms"),
            retry_after_ms=payload.get("retry_after_ms"),
            priority=int(payload.get("priority", 0)),
            tenant=(None if tenant is None else str(tenant)))


def summarize_answers(answers, *, wall_seconds: float | None = None,
                      ) -> dict:
    """Aggregate a list of :class:`Answer`\\ s into a report dict.

    Same shape as the legacy ``BatchReport.summary()`` (the dashboards
    and the ``/batch`` endpoint consume it), with ``wall_seconds``
    appended when the caller measured it.
    """
    answers = list(answers)
    penalties = np.asarray([a.penalty for a in answers
                            if a.error is None])
    times = np.asarray([a.elapsed for a in answers])
    summary = {
        "answered": sum(1 for a in answers if a.error is None),
        "failed": sum(1 for a in answers if a.error is not None),
        "mean_penalty": (float(penalties.mean()) if len(penalties)
                         else None),
        "max_penalty": (float(penalties.max()) if len(penalties)
                        else None),
        "all_valid": all(a.valid for a in answers if a.error is None),
        "total_item_time": float(times.sum()) if len(times) else 0.0,
        "max_item_time": float(times.max()) if len(times) else 0.0,
    }
    if wall_seconds is not None:
        summary["wall_seconds"] = float(wall_seconds)
    return summary


# ---------------------------------------------------------------------------
# Partial answers for sharded execution (scatter-gather merge).
#
# A Question fanned out over catalogue row ranges cannot merge three
# *refined* answers — MQP/MWK/MQWK outputs are not composable.  What
# *is* composable is the catalogue-wide precomputation each algorithm
# starts from: the per-weight k-th ranked point (an order statistic of
# a total order, so the global top-k is contained in the union of
# per-shard top-k's) and the FindIncom dominance partition (per-row
# predicates, so global sets are unions of per-shard sets).  Shards
# therefore return a :class:`ShardPartial`; the front door merges them
# into a :class:`Precompute` and hands it to one full-snapshot worker,
# which runs the refinement exactly as a single process would — same
# floats, same tie-breaks, byte-identical Answer.
#
# Byte-identity fine print: shard scores use the per-weight gemv form
# ``points @ w`` — the same BLAS call BRS applies to leaf rows — not
# the batched gemm of ``kth_scores_batch``, because gemm and gemv can
# legitimately disagree in the last bits (see RANK_EPS in
# :mod:`repro.engine.kernels`) and the merged k-th *score* feeds the
# MQP quadratic program verbatim.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPartial:
    """One shard's contribution to a fanned-out question.

    ``[start, stop)`` is the catalogue row range the shard covered;
    all ids are global row ids.  Fields are ``None`` when the
    question's algorithm does not need that precomputation (see
    ``AlgorithmSpec.shard_needs``).
    """

    start: int
    stop: int
    #: Global ids of shard rows dominating / incomparable-with /
    #: equal-to ``q`` (the ``FindIncom`` partition; dominated rows are
    #: never needed downstream and are not shipped).
    dominating_ids: np.ndarray | None = None
    incomparable_ids: np.ndarray | None = None
    equal_ids: np.ndarray | None = None
    #: Per why-not vector: the shard's ``min(k, stop - start)``
    #: smallest ``(score, id)`` pairs in ascending ``(score, id)``
    #: order, shape ``(m, min(k, stop - start))``.
    kth_ids: np.ndarray | None = None
    kth_scores: np.ndarray | None = None


@dataclass(frozen=True)
class Precompute:
    """Merged catalogue-wide precomputation injected into a finisher.

    ``incomparable`` reproduces ``find_incomparable(tree, q)`` (ids
    sorted ascending — the steppers canonicalize order anyway),
    ``candidate_ids`` reproduces the box-cache candidate set
    (everything *not* dominated by ``q``: D ∪ I ∪ equal rows), and
    ``kth_ids``/``kth_scores`` reproduce ``BRSEngine.kth_point`` per
    why-not vector.  ``kth_*`` is ``None`` when the catalogue has
    fewer than ``k`` points — the finisher then fails exactly like a
    single process.
    """

    incomparable: IncomparableResult | None = None
    candidate_ids: np.ndarray | None = None
    kth_ids: np.ndarray | None = None
    kth_scores: np.ndarray | None = None


def shard_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``n`` catalogue rows into at most ``shards`` contiguous,
    non-empty, near-equal ``[start, stop)`` ranges."""
    n = int(n)
    shards = max(1, min(int(shards), n))
    bounds = np.linspace(0, n, shards + 1).astype(np.int64)
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def shard_plan(question: Question) -> tuple[str, ...] | None:
    """Which partials a shard must compute for ``question``.

    Returns ``None`` when the question cannot be sharded — the
    algorithm declares no ``shard_needs``, or an option selects a
    non-default code path whose floats a merge cannot reproduce
    (``use_rtree=False`` scores via the batched gemm kernel, which
    may differ from the shard gemv in the last bits).  Unshardable
    questions run whole on a single full-snapshot worker.
    """
    needs = get_algorithm(question.algorithm).shard_needs
    if not needs:
        return None
    if question.options.get("use_rtree") is False:
        return None
    return needs


def compute_shard_partial(points, start: int,
                          question: Question) -> ShardPartial:
    """Run the shard-local half of the scatter-gather on one row range.

    ``points`` are the rows ``[start, start + len(points))`` of the
    catalogue (typically a zero-copy view of a shared-memory
    snapshot).
    """
    pts = np.asarray(points, dtype=np.float64)
    needs = shard_plan(question)
    if needs is None:
        raise ValueError(f"algorithm {question.algorithm!r} has no "
                         f"shard plan for this question")
    stop = start + int(pts.shape[0])
    dom_ids = inc_ids = eq_ids = kth_ids = kth_scores = None
    if "partition" in needs:
        qv = np.asarray(question.q, dtype=np.float64)
        dom = dominates_mask(pts, qv)
        sub = dominated_by_mask(pts, qv)
        equal = np.all(pts == qv, axis=1)
        ids = np.arange(start, stop, dtype=np.int64)
        dom_ids = ids[dom]
        inc_ids = ids[~(dom | sub | equal)]
        eq_ids = ids[equal]
    if "kth" in needs:
        from repro.engine.kernels import topk_pairs

        kth_scores, kth_ids = topk_pairs(
            pts, question.why_not, question.k, id_base=start)
    return ShardPartial(start=start, stop=stop,
                        dominating_ids=dom_ids,
                        incomparable_ids=inc_ids, equal_ids=eq_ids,
                        kth_ids=kth_ids, kth_scores=kth_scores)


def merge_shard_partials(question: Question,
                         partials) -> Precompute:
    """Gather: fold shard partials into one catalogue-wide
    :class:`Precompute`.

    Shards must cover contiguous, disjoint row ranges; order of the
    input sequence does not matter.
    """
    parts = sorted(partials, key=lambda p: p.start)
    if not parts:
        raise ValueError("cannot merge zero shard partials")
    expect = parts[0].start
    for part in parts:
        if part.start != expect:
            raise ValueError(
                f"shard partials do not tile the catalogue: expected "
                f"a shard starting at row {expect}, got {part.start}")
        expect = part.stop

    incomparable = candidate_ids = None
    if parts[0].dominating_ids is not None:
        dom = np.sort(np.concatenate(
            [p.dominating_ids for p in parts]))
        inc = np.sort(np.concatenate(
            [p.incomparable_ids for p in parts]))
        eq = np.sort(np.concatenate([p.equal_ids for p in parts]))
        incomparable = IncomparableResult(dominating_ids=dom,
                                          incomparable_ids=inc)
        candidate_ids = np.sort(np.concatenate([dom, inc, eq]))

    kth_ids = kth_scores = None
    if parts[0].kth_ids is not None:
        ids = np.concatenate([p.kth_ids for p in parts], axis=1)
        scores = np.concatenate([p.kth_scores for p in parts], axis=1)
        k = question.k
        if ids.shape[1] >= k:
            m = ids.shape[0]
            kth_ids = np.empty(m, dtype=np.int64)
            kth_scores = np.empty(m, dtype=np.float64)
            for i in range(m):
                # k-th element of the global (score, id) total order —
                # identical to BRS's rank-k emission with ties broken
                # by ascending id.
                order = np.lexsort((ids[i], scores[i]))
                kth_ids[i] = ids[i][order[k - 1]]
                kth_scores[i] = scores[i][order[k - 1]]
        # else: fewer than k points in the whole catalogue — leave
        # kth unset so the finisher raises the canonical error.

    return Precompute(incomparable=incomparable,
                      candidate_ids=candidate_ids,
                      kth_ids=kth_ids, kth_scores=kth_scores)
