"""Refinement auditing: validate and price *any* proposed refinement.

The three WQRTQ algorithms produce refinements; analysts also want to
evaluate refinements of their own ("what if we only lower the price?",
"what if we pitch the customer to care 10% less about heat?").  This
module prices an arbitrary ``(q', Wm', k')`` proposal under the
paper's penalty models and checks its validity — whether every
(refined) why-not vector really ranks the (refined) query point in
its top-k'.

It is also how the test suite verifies algorithm outputs end-to-end:
every result type can be fed back through :func:`audit_refinement`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.penalty import (
    DEFAULT_PENALTY,
    PenaltyConfig,
    penalty_joint,
    penalty_query_point,
    penalty_weights_k,
)
from repro.core.types import MQPResult, MQWKResult, MWKResult, WhyNotQuery
from repro.engine.kernels import ranks_batch


@dataclass(frozen=True)
class RefinementAudit:
    """Validity + pricing of one proposed refinement.

    Attributes
    ----------
    valid:
        True iff every refined vector ranks the refined query point
        within the refined k.
    ranks:
        The actual rank of the refined query point under each refined
        vector.
    penalty:
        The applicable penalty: Eq. (1) for a pure-q change, Eq. (4)
        for a pure-(Wm, k) change, Eq. (5) for a joint change.
    q_changed / weights_changed / k_changed:
        Which components the proposal touches.
    """

    valid: bool
    ranks: np.ndarray
    penalty: float
    q_changed: bool
    weights_changed: bool
    k_changed: bool

    @property
    def kind(self) -> str:
        """``"mqp"``-, ``"mwk"``- or ``"mqwk"``-shaped proposal."""
        wk = self.weights_changed or self.k_changed
        if self.q_changed and wk:
            return "mqwk"
        if self.q_changed:
            return "mqp"
        return "mwk"


def audit_refinement(query: WhyNotQuery, *, q_new=None,
                     weights_new=None, k_new: int | None = None,
                     config: PenaltyConfig = DEFAULT_PENALTY,
                     ) -> RefinementAudit:
    """Price and validate a proposed refinement of ``query``.

    Unspecified components default to the original query's values.
    ``k'_max`` for the Eq. (4) normalization is the maximum original
    rank (Lemma 4), exactly as the algorithms use it.
    """
    q_ref = (query.q if q_new is None
             else np.asarray(q_new, dtype=np.float64))
    w_ref = (query.why_not if weights_new is None
             else np.atleast_2d(np.asarray(weights_new,
                                           dtype=np.float64)))
    if w_ref.shape != query.why_not.shape:
        raise ValueError("weights_new must match the why-not set's "
                         "shape")
    k_ref = query.k if k_new is None else int(k_new)
    if k_ref < 1:
        raise ValueError("refined k must be positive")

    q_changed = bool(np.any(q_ref != query.q))
    w_changed = bool(np.any(w_ref != query.why_not))
    k_changed = k_ref != query.k

    ranks = ranks_batch(w_ref, query.points, q_ref)
    valid = bool(np.all(ranks <= k_ref))

    k_max = int(query.ranks().max())
    if q_changed and (w_changed or k_changed):
        penalty = penalty_joint(query.q, q_ref, query.why_not, w_ref,
                                query.k, k_ref, k_max, config)
    elif q_changed:
        penalty = penalty_query_point(query.q, q_ref)
    else:
        penalty = penalty_weights_k(query.why_not, w_ref, query.k,
                                    k_ref, k_max, config)
    return RefinementAudit(
        valid=valid, ranks=ranks, penalty=float(penalty),
        q_changed=q_changed, weights_changed=w_changed,
        k_changed=k_changed)


def audit_result(query: WhyNotQuery, result, *,
                 config: PenaltyConfig = DEFAULT_PENALTY,
                 ) -> RefinementAudit:
    """Audit an algorithm's output object directly."""
    if isinstance(result, MQPResult):
        return audit_refinement(query, q_new=result.q_refined,
                                config=config)
    if isinstance(result, MWKResult):
        return audit_refinement(query,
                                weights_new=result.weights_refined,
                                k_new=result.k_refined, config=config)
    if isinstance(result, MQWKResult):
        return audit_refinement(query, q_new=result.q_refined,
                                weights_new=result.weights_refined,
                                k_new=result.k_refined, config=config)
    raise TypeError(f"unsupported result type: {type(result)}")
