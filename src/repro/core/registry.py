"""Pluggable algorithm registry — the single dispatch point.

The WQRTQ framework (Figure 4 of the paper) is one system with three
refinement algorithms.  Historically every front door — the library
facade, the batch executor, the CLI and the HTTP service — re-listed
the algorithm names in its own ``if/elif`` chain, so adding a fourth
refinement meant touching all of them.  This module replaces the
chains with one registry:

* :func:`register_algorithm` — decorator that makes a refinement
  callable addressable by name from every entry point at once;
* :func:`get_algorithm` — name → :class:`AlgorithmSpec` lookup whose
  error message lists the registered names;
* :func:`algorithm_names` — dynamic enumeration for the CLI
  (``choices=``), the service (``GET /algorithms``) and error texts.

Registered callables share one uniform signature::

    fn(query, *, context, rng, penalty_config, options) -> result

where ``query`` is a validated
:class:`~repro.core.types.WhyNotQuery`, ``context`` an optional
:class:`~repro.engine.context.DatasetContext` whose caches the
algorithm may ride, ``rng`` an optional ``numpy`` generator,
``penalty_config`` the α/β/γ/λ tolerances and ``options`` a plain
dict of the per-algorithm knobs declared in
:attr:`AlgorithmSpec.option_names` (validated at
:class:`~repro.core.protocol.Question` construction, so an unknown
knob fails fast with an actionable message instead of a ``TypeError``
deep in the call stack).

The paper's three algorithms are registered at import time below.
Extensions register their own::

    @register_algorithm("mqp-exact", summary="exhaustive MQP",
                        option_names=("grid",))
    def run_mqp_exact(query, *, context, rng, penalty_config, options):
        ...
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core import mqp as _mqp_module
from repro.core import mqwk as _mqwk_module
from repro.core import mwk as _mwk_module

__all__ = [
    "AlgorithmSpec",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "unregister_algorithm",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered refinement algorithm.

    ``fn`` is the run-to-completion form.  ``stepper`` — optional —
    is the *anytime* form: a factory with the same uniform signature
    returning a resumable stepper state (an object exposing
    ``refine(chunk) -> result``, ``converged``, ``samples_examined``,
    ``rounds`` and ``sample_target``).  Algorithms registered without
    a stepper still work everywhere; a budgeted question simply runs
    them to completion in a single round.
    """

    name: str
    fn: Callable[..., object]
    summary: str = ""
    option_names: tuple[str, ...] = field(default_factory=tuple)
    stepper: Callable[..., object] | None = None
    #: Which scatter-gather partials the algorithm can consume when a
    #: question is fanned out over catalogue shards (see
    #: :func:`repro.core.protocol.compute_shard_partial`): any of
    #: ``"partition"`` (the FindIncom dominance partition) and
    #: ``"kth"`` (per-why-not k-th ranked points).  Empty — the
    #: default, and the value for extensions registered without it —
    #: means the algorithm is never sharded and never receives a
    #: ``precompute`` argument, so pre-existing callables keep their
    #: signature.
    shard_needs: tuple[str, ...] = field(default_factory=tuple)

    def run(self, query, *, context=None, rng=None, penalty_config=None,
            options=None, precompute=None):
        """Invoke the algorithm with the uniform calling convention.

        ``precompute`` — a merged
        :class:`~repro.core.protocol.Precompute` — is forwarded only
        to algorithms that declared ``shard_needs``.
        """
        extra = ({"precompute": precompute}
                 if self.shard_needs and precompute is not None else {})
        return self.fn(query, context=context, rng=rng,
                       penalty_config=penalty_config,
                       options=dict(options or {}), **extra)

    @property
    def supports_anytime(self) -> bool:
        return self.stepper is not None

    def start(self, query, *, context=None, rng=None,
              penalty_config=None, options=None, precompute=None):
        """Begin anytime execution: build the resumable stepper state.

        Raises ``ValueError`` when the algorithm registered no
        stepper — callers that can fall back (the executor does)
        check :attr:`supports_anytime` first.
        """
        if self.stepper is None:
            raise ValueError(f"algorithm {self.name!r} does not "
                             "support anytime execution")
        extra = ({"precompute": precompute}
                 if self.shard_needs and precompute is not None else {})
        return self.stepper(query, context=context, rng=rng,
                            penalty_config=penalty_config,
                            options=dict(options or {}), **extra)

    @staticmethod
    def refine(state, chunk: int):
        """One refinement round: ``(state, result)`` with the state
        advanced by up to ``chunk`` samples.  The state is mutated
        and returned — the functional shape exists so callers can
        treat steppers as opaque resumable values."""
        return state, state.refine(chunk)

    def describe(self) -> dict:
        """JSON-safe form (the ``GET /algorithms`` payload)."""
        return {"name": self.name, "summary": self.summary,
                "options": list(self.option_names),
                "anytime": self.supports_anytime}


#: Registration order is preserved: it is the paper's presentation
#: order for the built-ins and becomes the ``--algorithm all`` order.
_REGISTRY: dict[str, AlgorithmSpec] = {}

#: Registration can race request handling: a long-running ``wqrtq
#: serve`` process may load an extension while ThreadingHTTPServer
#: handler threads enumerate ``/algorithms`` or dispatch questions.
#: The check-then-insert in :func:`register_algorithm` (and the
#: snapshot reads below) sit behind this lock so a registration is
#: atomic from every thread's point of view.
_REGISTRY_LOCK = threading.Lock()


def register_algorithm(name: str, *, summary: str = "",
                       option_names: tuple[str, ...] = (),
                       stepper: Callable[..., object] | None = None,
                       shard_needs: tuple[str, ...] = ()):
    """Class/function decorator registering a refinement under ``name``.

    ``stepper`` optionally registers the algorithm's anytime factory
    (see :class:`AlgorithmSpec`).  ``shard_needs`` opts the algorithm
    into sharded scatter-gather execution; declaring it means ``fn``
    (and ``stepper``) accept a ``precompute`` keyword.  Raises
    ``ValueError`` for empty or duplicate names — shadowing an
    existing algorithm silently would change answers behind every
    entry point at once.
    """
    key = str(name).strip().lower()

    def decorate(fn):
        if not key:
            raise ValueError("algorithm name must be non-empty")
        spec = AlgorithmSpec(name=key, fn=fn, summary=summary,
                             option_names=tuple(option_names),
                             stepper=stepper,
                             shard_needs=tuple(shard_needs))
        with _REGISTRY_LOCK:
            if key in _REGISTRY:
                raise ValueError(f"algorithm {key!r} is already "
                                 "registered")
            _REGISTRY[key] = spec
        return fn

    return decorate


def unregister_algorithm(name: str) -> None:
    """Remove a registration (primarily for tests of extensions)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(str(name).strip().lower(), None)


def algorithm_names() -> tuple[str, ...]:
    """Registered names, in registration order."""
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY)


def get_algorithm(name) -> AlgorithmSpec:
    """Look up a registered algorithm.

    Raises ``ValueError`` whose message lists the registered names —
    the one error text the CLI, the batch executor and the HTTP
    service all surface for an unknown algorithm.
    """
    key = name.strip().lower() if isinstance(name, str) else name
    with _REGISTRY_LOCK:
        spec = _REGISTRY.get(key)
    if spec is None:
        known = ", ".join(algorithm_names()) or "<none>"
        raise ValueError(f"unknown algorithm: {name!r} "
                         f"(registered: {known})")
    return spec


# ---------------------------------------------------------------------
# The paper's three refinement algorithms (Algorithms 1-3).
#
# The adapters resolve the implementation through its module attribute
# at call time (``_mqp_module.modify_query_point`` rather than a
# captured reference) so tests can monkeypatch the underlying
# function and every entry point sees the patch.  The stepper
# factories translate the per-algorithm option dict into the stepper
# constructors; each stepper's ``sample_target`` is the sample count
# the one-shot form would have used, which is what an unbudgeted
# ``ask_stream`` (or a deadline-only budget) refines toward.
# ---------------------------------------------------------------------

def _mqp_precompute_kwargs(precompute):
    if precompute is None or precompute.kth_ids is None:
        return {}
    return {"kth": (precompute.kth_ids, precompute.kth_scores)}


def _mwk_precompute_kwargs(precompute):
    if precompute is None or precompute.incomparable is None:
        return {}
    return {"incomparable": precompute.incomparable}


def _mqwk_precompute_kwargs(query, precompute):
    if precompute is None:
        return {}
    kwargs = _mqp_precompute_kwargs(precompute)
    if precompute.candidate_ids is not None:
        from repro.core.incomparable import IncomparableCache

        kwargs["cache"] = IncomparableCache.from_candidates(
            query.points, query.q, precompute.candidate_ids)
    return kwargs


def _start_mqp(query, *, context, rng, penalty_config, options,
               precompute=None):
    return _mqp_module.MQPStepper(
        query, **_mqp_precompute_kwargs(precompute), **options)


def _start_mwk(query, *, context, rng, penalty_config, options,
               precompute=None):
    options = dict(options)
    target = int(options.pop("sample_size", 800))
    return _mwk_module.make_stepper(
        query, rng=rng, config=penalty_config, context=context,
        sample_target=target,
        **_mwk_precompute_kwargs(precompute), **options)


def _start_mqwk(query, *, context, rng, penalty_config, options,
                precompute=None):
    return _mqwk_module.make_stepper(
        query, rng=rng, config=penalty_config, context=context,
        **_mqwk_precompute_kwargs(query, precompute), **options)


@register_algorithm(
    "mqp",
    summary="Algorithm 1 — modify the query point (quadratic program)",
    option_names=("use_rtree",), stepper=_start_mqp,
    shard_needs=("kth",))
def _run_mqp(query, *, context, rng, penalty_config, options,
             precompute=None):
    return _mqp_module.modify_query_point(
        query, **_mqp_precompute_kwargs(precompute), **options)


@register_algorithm(
    "mwk",
    summary="Algorithm 2 — modify the why-not weights and k (sampling)",
    option_names=("sample_size", "include_originals"),
    stepper=_start_mwk, shard_needs=("partition",))
def _run_mwk(query, *, context, rng, penalty_config, options,
             precompute=None):
    return _mwk_module.modify_weights_and_k(
        query, rng=rng, config=penalty_config, context=context,
        **_mwk_precompute_kwargs(precompute), **options)


@register_algorithm(
    "mqwk",
    summary="Algorithm 3 — jointly modify q, the weights and k",
    option_names=("sample_size", "q_sample_size", "include_originals",
                  "use_reuse"),
    stepper=_start_mqwk, shard_needs=("partition", "kth"))
def _run_mqwk(query, *, context, rng, penalty_config, options,
              precompute=None):
    return _mqwk_module.modify_query_weights_and_k(
        query, rng=rng, config=penalty_config, context=context,
        **_mqwk_precompute_kwargs(query, precompute), **options)
