"""WQRTQ — the pre-Session why-not façade (Figure 4 of the paper).

.. deprecated::
    :class:`WQRTQ` is superseded by
    :class:`~repro.core.session.Session` + typed
    :class:`~repro.core.protocol.Question` objects, which share one
    calling convention with the batch executor, the CLI and the HTTP
    service.  The class remains as a thin shim (it emits
    ``DeprecationWarning``) because it still owns two conveniences
    the Session keeps out of scope: binding one ``(q, k)`` pair for a
    whole interactive exploration, and Definition-5 membership
    validation of bichromatic why-not vectors against ``W``.

:class:`WQRTQ` is constructed from the
product dataset, a query point, ``k`` and — for the bichromatic mode —
the preference set ``W``, and exposes:

* :meth:`reverse_topk` — the original query result (a set of ``W``
  indices, or 2-D weighting-space intervals for the monochromatic
  mode);
* :meth:`explain` — aspect (i): the points responsible for excluding
  each why-not vector;
* :meth:`modify_query_point` / :meth:`modify_weights_and_k` /
  :meth:`modify_all` — the three refinement solutions (Algorithms 1-3).

Why-not vectors are validated per Definition 4/5: monochromatic ones
may be any simplex vector outside the current result, bichromatic ones
must additionally belong to ``W``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.explain import WhyNotExplanation, explain_why_not
from repro.core.mqp import modify_query_point as _mqp
from repro.core.mqwk import modify_query_weights_and_k as _mqwk
from repro.core.mwk import modify_weights_and_k as _mwk
from repro.core.penalty import DEFAULT_PENALTY, PenaltyConfig
from repro.core.types import MQPResult, MQWKResult, MWKResult, WhyNotQuery
from repro.engine.context import DatasetContext
from repro.index.rtree import RTree
from repro.rtopk.bichromatic import brtopk_rta
from repro.rtopk.mono import mrtopk_2d


class WQRTQ:
    """Answer why-not questions on reverse top-k queries.

    Parameters
    ----------
    points:
        The product dataset ``P``, shape ``(n, d)``.
    q:
        Query point (the product under analysis).
    k:
        Reverse top-k parameter.
    weights:
        The preference set ``W`` for bichromatic queries; omit for the
        monochromatic mode.
    tree:
        Optional pre-built R-tree over ``points``.
    context:
        Optional shared :class:`~repro.engine.context.DatasetContext`.
        Pass the same context to many ``WQRTQ`` instances (one per
        product) to share the R-tree and ``FindIncom`` partition
        caches across them; omitted, a private context is created.
    penalty_config:
        Tolerance weights α/β/γ/λ (defaults: all 0.5, as in the paper's
        experiments).
    """

    def __init__(self, points, q, k: int, *, weights=None,
                 tree: RTree | None = None,
                 context: DatasetContext | None = None,
                 penalty_config: PenaltyConfig = DEFAULT_PENALTY):
        warnings.warn(
            "WQRTQ is deprecated; use repro.Session with typed "
            "repro.Question objects (see DESIGN.md, 'public API')",
            DeprecationWarning, stacklevel=2)
        if context is None:
            context = DatasetContext(points, tree=tree)
        elif tree is not None:
            raise ValueError("pass either tree or context, not both")
        self.context = context
        self.points = context.points
        self.q = np.asarray(q, dtype=np.float64).reshape(-1)
        self.k = int(k)
        self.weights = (None if weights is None
                        else np.atleast_2d(np.asarray(weights,
                                                      dtype=np.float64)))
        self.penalty_config = penalty_config

    # ------------------------------------------------------------------

    @property
    def is_bichromatic(self) -> bool:
        return self.weights is not None

    @property
    def tree(self) -> RTree:
        return self.context.tree

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])

    # ------------------------------------------------------------------
    # The original reverse top-k query
    # ------------------------------------------------------------------

    def reverse_topk(self):
        """Result of the original reverse top-k query.

        Bichromatic mode: sorted indices into ``W``.  Monochromatic
        mode (2-D only): list of qualifying ``w1`` intervals.
        """
        if self.is_bichromatic:
            return brtopk_rta(self.tree, self.weights, self.q, self.k)
        if self.dim != 2:
            raise ValueError("monochromatic result enumeration is "
                             "implemented for 2-D data")
        return mrtopk_2d(self.points, self.q, self.k)

    def missing_weights(self) -> np.ndarray:
        """``W \\ BRTOPk(q)`` — the legal why-not vectors (Def. 5)."""
        if not self.is_bichromatic:
            raise ValueError("missing_weights requires a bichromatic "
                             "query (a finite W)")
        members = set(self.reverse_topk().tolist())
        keep = [i for i in range(len(self.weights)) if i not in members]
        return self.weights[keep]

    # ------------------------------------------------------------------
    # Why-not question construction / validation
    # ------------------------------------------------------------------

    def make_question(self, why_not) -> WhyNotQuery:
        """Validate a why-not vector set and bind it to this query.

        Bichromatic mode additionally requires every vector to be a row
        of ``W`` (Definition 5).
        """
        wm = np.atleast_2d(np.asarray(why_not, dtype=np.float64))
        if self.is_bichromatic:
            for row in wm:
                if not np.any(np.all(np.isclose(self.weights, row,
                                                atol=1e-9), axis=1)):
                    raise ValueError(
                        f"bichromatic why-not vector {row} is not in W")
        return WhyNotQuery(points=self.points, q=self.q, k=self.k,
                           why_not=wm, tree=self.tree)

    # ------------------------------------------------------------------
    # Aspect (i): explanation
    # ------------------------------------------------------------------

    def explain(self, why_not, *, max_culprits: int | None = None,
                ) -> list[WhyNotExplanation]:
        """Why is each vector missing?  (The culprit points.)"""
        question = self.make_question(why_not)
        return explain_why_not(self.tree, question.q, question.why_not,
                               question.k, max_culprits=max_culprits)

    # ------------------------------------------------------------------
    # Aspect (ii): the three refinement solutions
    # ------------------------------------------------------------------

    def modify_query_point(self, why_not) -> MQPResult:
        """Solution 1 (Algorithm 1): move the product."""
        return _mqp(self.make_question(why_not))

    def modify_weights_and_k(self, why_not, *, sample_size: int = 800,
                             rng=None) -> MWKResult:
        """Solution 2 (Algorithm 2): nudge the customers."""
        return _mwk(self.make_question(why_not),
                    sample_size=sample_size, rng=rng,
                    config=self.penalty_config, context=self.context)

    def modify_all(self, why_not, *, sample_size: int = 800,
                   q_sample_size: int | None = None, rng=None,
                   ) -> MQWKResult:
        """Solution 3 (Algorithm 3): meet in the middle."""
        return _mqwk(self.make_question(why_not),
                     sample_size=sample_size,
                     q_sample_size=q_sample_size, rng=rng,
                     config=self.penalty_config, context=self.context)
