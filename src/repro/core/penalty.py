"""Penalty models of the WQRTQ framework (Equations 1, 3, 4, 5).

Three nested models quantify how far a refined query drifts from the
original:

* **Eq. (1)** — query-point modification:
  ``Penalty(q') = ||q - q'|| / ||q||`` (relative Euclidean distortion;
  matches the paper's worked example: q(4,4) -> q'(3,2.5) gives 0.318).
* **Eq. (3)/(4)** — preference modification: ``Δk = max(0, k' - k)``
  normalized by ``Δk_max = k'_max - k`` (Lemma 4) and
  ``ΔWm = Σ ||w_i - w_i'||`` normalized by ``|Wm|·√2`` (the maximum
  Euclidean displacement within the simplex per vector is ``√2``),
  blended with tolerances ``α + β = 1``.
* **Eq. (5)** — joint modification: ``γ·Penalty(q') + λ·Penalty(Wm',k')``
  with ``γ + λ = 1``.

All penalties live in ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vectors import MAX_SIMPLEX_DISTANCE


def penalty_query_point(q, q_refined) -> float:
    """Eq. (1): relative Euclidean modification of the query point.

    >>> round(penalty_query_point([4, 4], [3, 2.5]), 4)
    0.3187
    >>> round(penalty_query_point([4, 4], [2.5, 3.5]), 4)
    0.2795
    """
    qv = np.asarray(q, dtype=np.float64)
    rv = np.asarray(q_refined, dtype=np.float64)
    norm_q = float(np.linalg.norm(qv))
    if norm_q == 0.0:
        raise ValueError("q must be non-zero to normalize Eq. (1)")
    return float(np.linalg.norm(qv - rv)) / norm_q


def delta_weights(weights, weights_refined) -> float:
    """Eq. (3), ΔWm: summed Euclidean displacement of the vectors."""
    a = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    b = np.atleast_2d(np.asarray(weights_refined, dtype=np.float64))
    if a.shape != b.shape:
        raise ValueError("Wm and Wm' must have identical shape")
    return float(np.sum(np.linalg.norm(a - b, axis=1)))


def delta_k(k: int, k_refined: int) -> int:
    """Eq. (3), Δk: increase of k (a decrease costs nothing)."""
    return max(0, int(k_refined) - int(k))


@dataclass(frozen=True)
class PenaltyConfig:
    """Tolerance weights of the blended penalty models.

    ``alpha``/``beta`` trade Δk against ΔWm inside Eq. (4);
    ``gamma``/``lam`` trade the q-penalty against the (Wm, k)-penalty
    inside Eq. (5).  The paper's experiments fix all four to 0.5.
    """

    alpha: float = 0.5
    beta: float = 0.5
    gamma: float = 0.5
    lam: float = 0.5

    def __post_init__(self) -> None:
        if abs(self.alpha + self.beta - 1.0) > 1e-9:
            raise ValueError("alpha + beta must equal 1")
        if abs(self.gamma + self.lam - 1.0) > 1e-9:
            raise ValueError("gamma + lambda must equal 1")
        if min(self.alpha, self.beta, self.gamma, self.lam) < 0:
            raise ValueError("tolerance weights must be non-negative")


DEFAULT_PENALTY = PenaltyConfig()


def penalty_weights_k(weights, weights_refined, k: int, k_refined: int,
                      k_max: int,
                      config: PenaltyConfig = DEFAULT_PENALTY) -> float:
    """Eq. (4): normalized blended penalty of modifying ``(Wm, k)``.

    Parameters
    ----------
    k_max:
        ``k'_max`` of Lemma 4 — the largest rank of ``q`` under any
        original why-not vector.  When ``k_max == k`` (degenerate) the
        Δk term is zero by definition.
    """
    w_orig = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    dk = delta_k(k, k_refined)
    dk_max = max(0, int(k_max) - int(k))
    term_k = (dk / dk_max) if dk_max > 0 else 0.0
    dw = delta_weights(weights, weights_refined)
    dw_max = len(w_orig) * MAX_SIMPLEX_DISTANCE
    term_w = dw / dw_max
    return config.alpha * term_k + config.beta * term_w


def penalty_joint(q, q_refined, weights, weights_refined, k: int,
                  k_refined: int, k_max: int,
                  config: PenaltyConfig = DEFAULT_PENALTY) -> float:
    """Eq. (5): joint penalty of modifying ``q``, ``Wm`` and ``k``."""
    pq = penalty_query_point(q, q_refined)
    pwk = penalty_weights_k(weights, weights_refined, k, k_refined,
                            k_max, config)
    return config.gamma * pq + config.lam * pwk
