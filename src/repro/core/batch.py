"""Batch why-not answering over one dataset.

A manufacturer typically asks many why-not questions against the same
catalogue — one per (product, customer-set) pair.  Answering them
independently re-pays the R-tree construction and, for MQWK, the
``FindIncom`` traversal every time.  :class:`WhyNotBatch` shares the
index across questions, answers them with any of the three
algorithms, and aggregates the outcomes into a report — the shape a
market-analysis dashboard would consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.audit import audit_result
from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k
from repro.core.penalty import DEFAULT_PENALTY, PenaltyConfig
from repro.core.types import WhyNotQuery
from repro.index.rtree import RTree


@dataclass
class BatchItem:
    """One answered question inside a batch."""

    index: int
    query: WhyNotQuery
    algorithm: str
    result: object
    penalty: float
    valid: bool
    error: str | None = None


@dataclass
class BatchReport:
    """Aggregate view over a batch run."""

    items: list[BatchItem] = field(default_factory=list)

    @property
    def n_answered(self) -> int:
        return sum(1 for item in self.items if item.error is None)

    @property
    def n_failed(self) -> int:
        return sum(1 for item in self.items if item.error is not None)

    def penalties(self) -> np.ndarray:
        return np.asarray([item.penalty for item in self.items
                           if item.error is None])

    def summary(self) -> dict:
        pens = self.penalties()
        return {
            "answered": self.n_answered,
            "failed": self.n_failed,
            "mean_penalty": float(pens.mean()) if len(pens) else None,
            "max_penalty": float(pens.max()) if len(pens) else None,
            "all_valid": all(item.valid for item in self.items
                             if item.error is None),
        }


class WhyNotBatch:
    """Answer many why-not questions against one shared dataset.

    Parameters
    ----------
    points:
        The catalogue ``P``; the R-tree over it is built once.
    penalty_config:
        Shared tolerance weights.
    """

    def __init__(self, points, *,
                 penalty_config: PenaltyConfig = DEFAULT_PENALTY):
        self.points = np.atleast_2d(np.asarray(points,
                                               dtype=np.float64))
        self.tree = RTree(self.points)
        self.penalty_config = penalty_config
        self._questions: list[tuple[np.ndarray, int, np.ndarray]] = []

    def add_question(self, q, k: int, why_not) -> int:
        """Queue a question; returns its index in the batch."""
        self._questions.append((
            np.asarray(q, dtype=np.float64),
            int(k),
            np.atleast_2d(np.asarray(why_not, dtype=np.float64)),
        ))
        return len(self._questions) - 1

    def __len__(self) -> int:
        return len(self._questions)

    def run(self, algorithm: str = "mqp", *, sample_size: int = 200,
            seed: int = 0) -> BatchReport:
        """Answer every queued question with one algorithm.

        Questions that fail validation (e.g. a vector that is not
        actually missing) are reported as failed items instead of
        aborting the batch.
        """
        if algorithm not in ("mqp", "mwk", "mqwk"):
            raise ValueError(f"unknown algorithm: {algorithm!r}")
        report = BatchReport()
        for index, (q, k, wm) in enumerate(self._questions):
            try:
                query = WhyNotQuery(points=self.points, q=q, k=k,
                                    why_not=wm, tree=self.tree)
                rng = np.random.default_rng(seed + index)
                if algorithm == "mqp":
                    result = modify_query_point(query)
                elif algorithm == "mwk":
                    result = modify_weights_and_k(
                        query, sample_size=sample_size, rng=rng,
                        config=self.penalty_config)
                else:
                    result = modify_query_weights_and_k(
                        query, sample_size=sample_size, rng=rng,
                        config=self.penalty_config)
                audit = audit_result(query, result,
                                     config=self.penalty_config)
                report.items.append(BatchItem(
                    index=index, query=query, algorithm=algorithm,
                    result=result, penalty=audit.penalty,
                    valid=audit.valid))
            except ValueError as exc:
                report.items.append(BatchItem(
                    index=index, query=None, algorithm=algorithm,
                    result=None, penalty=float("nan"), valid=False,
                    error=str(exc)))
        return report
