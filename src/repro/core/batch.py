"""Batch why-not answering over one dataset (pre-Session shim).

.. deprecated::
    :class:`WhyNotBatch` queues raw ``(q, k, Wm)`` triples; the typed
    replacement is :meth:`repro.Session.ask_batch` over
    :class:`~repro.core.protocol.Question` objects.  The class
    remains as a thin shim emitting ``DeprecationWarning``.

A manufacturer typically asks many why-not questions against the same
catalogue — one per (product, customer-set) pair.  Answering them
independently re-pays the R-tree construction and, for MWK/MQWK, the
``FindIncom`` traversal every time.  :class:`WhyNotBatch` queues the
questions and hands them to the engine layer: a shared
:class:`~repro.engine.context.DatasetContext` caches the index and the
per-product partitions, and the executor answers the queue — serially
or with ``workers > 1`` threads, result-identically — and aggregates
the outcomes into a report, the shape a market-analysis dashboard
would consume.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.penalty import DEFAULT_PENALTY, PenaltyConfig
from repro.engine.context import DatasetContext
from repro.engine.executor import ExecutionItem, _execute_triples
from repro.index.rtree import RTree

#: One answered question inside a batch (re-exported engine type).
BatchItem = ExecutionItem


@dataclass
class BatchReport:
    """Aggregate view over a batch run."""

    items: list[BatchItem] = field(default_factory=list)

    @property
    def n_answered(self) -> int:
        return sum(1 for item in self.items if item.error is None)

    @property
    def n_failed(self) -> int:
        return sum(1 for item in self.items if item.error is not None)

    def penalties(self) -> np.ndarray:
        return np.asarray([item.penalty for item in self.items
                           if item.error is None])

    def elapsed(self) -> np.ndarray:
        """Per-item answer times in seconds (failed items included)."""
        return np.asarray([item.elapsed for item in self.items])

    def summary(self) -> dict:
        pens = self.penalties()
        times = self.elapsed()
        return {
            "answered": self.n_answered,
            "failed": self.n_failed,
            "mean_penalty": float(pens.mean()) if len(pens) else None,
            "max_penalty": float(pens.max()) if len(pens) else None,
            "all_valid": all(item.valid for item in self.items
                             if item.error is None),
            "total_item_time": float(times.sum()) if len(times) else 0.0,
            "max_item_time": float(times.max()) if len(times) else 0.0,
        }


class WhyNotBatch:
    """Answer many why-not questions against one shared dataset.

    Parameters
    ----------
    points:
        The catalogue ``P``.  Ignored when ``context`` is given.
    penalty_config:
        Shared tolerance weights.
    context:
        Optional pre-existing :class:`DatasetContext` to ride on —
        e.g. one shared with interactive :class:`WQRTQ` sessions so
        the batch inherits their warmed caches.
    """

    def __init__(self, points=None, *,
                 penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                 context: DatasetContext | None = None):
        warnings.warn(
            "WhyNotBatch is deprecated; use repro.Session.ask_batch "
            "with typed repro.Question objects",
            DeprecationWarning, stacklevel=2)
        if context is None:
            if points is None:
                raise ValueError("WhyNotBatch needs points or a "
                                 "context")
            context = DatasetContext(points)
        elif points is not None:
            raise ValueError("pass either points or context, not both")
        self.context = context
        self.points = context.points
        self.penalty_config = penalty_config
        self._questions: list[tuple[np.ndarray, int, np.ndarray]] = []

    @property
    def tree(self) -> RTree:
        """The shared R-tree (context-cached, built on first use)."""
        return self.context.tree

    def add_question(self, q, k: int, why_not) -> int:
        """Queue a question; returns its index in the batch."""
        self._questions.append((
            np.asarray(q, dtype=np.float64),
            int(k),
            np.atleast_2d(np.asarray(why_not, dtype=np.float64)),
        ))
        return len(self._questions) - 1

    def __len__(self) -> int:
        return len(self._questions)

    def run(self, algorithm: str = "mqp", *, sample_size: int = 200,
            seed: int = 0, workers: int = 1) -> BatchReport:
        """Answer every queued question with one algorithm.

        Questions that fail validation (e.g. a vector that is not
        actually missing) are reported as failed items instead of
        aborting the batch.  ``workers > 1`` answers questions on a
        thread pool; per-item seeded RNGs make the result identical to
        the serial run.
        """
        # _execute_triples is the non-warning internal path: the
        # constructor already warned once, and the shim must not
        # route through another deprecated entry point.
        items = _execute_triples(
            self.context, self._questions, algorithm,
            sample_size=sample_size, seed=seed, workers=workers,
            penalty_config=self.penalty_config)
        return BatchReport(items=items)
