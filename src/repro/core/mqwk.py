"""MQWK — Modifying q, Wm and k simultaneously (Algorithm 3).

MQWK searches the joint refinement space by sampling:

1. Run MQP to obtain ``q_min`` — the closest fully-safe query point.
   Only query points in the box ``[q_min, q]`` can participate in an
   optimal joint answer: outside it, either the (Wm, k) part needs no
   change (and MQP already found the cheapest such point) or the
   q-penalty alone already exceeds MQP's total (Section 4.4).
2. Sample ``|Q|`` query points from that box.
3. For each sample ``q'`` run MWK, *reusing* a single R-tree traversal:
   the :class:`~repro.core.incomparable.IncomparableCache` collects all
   points not dominated by ``q`` once, and re-partitions them per
   sample with two vectorized comparisons.
4. Return the tuple ``(q', Wm', k')`` with the smallest Eq. (5) joint
   penalty.

The two box endpoints are always evaluated as candidates — ``(q_min,
Wm, k)`` (pure MQP) and ``(q, MWK(q))`` (pure MWK) — so MQWK's joint
penalty is never worse than either single-sided refinement, an
invariant the test suite checks.

Anytime execution
-----------------
:class:`MQWKStepper` is the resumable form: the endpoints are
evaluated at construction (the pure-MWK endpoint consumes the caller's
generator exactly like a standalone :func:`modify_weights_and_k`, so
it stays bit-identical to it), and ``refine(chunk)`` examines
``chunk`` more query-point candidates from a chunk-invariant
:class:`~repro.core.sampling.QueryPointSampleStream`.  Candidate ``i``
runs its inner MWK under a generator derived from ``(entropy, i)`` —
a function of the candidate's *position*, not of how refinement was
chunked — so the answer after ``N`` total candidates is identical to
the one-shot :func:`modify_query_weights_and_k` at
``q_sample_size=N`` and the same seed, and the carried best makes the
penalty non-increasing across rounds.
"""

from __future__ import annotations

import numpy as np

from repro.core.incomparable import IncomparableCache, find_incomparable
from repro.core.mqp import modify_query_point
from repro.core.mwk import _mwk_core
from repro.core.penalty import (
    DEFAULT_PENALTY,
    PenaltyConfig,
    penalty_query_point,
)
from repro.core.sampling import QueryPointSampleStream, stream_entropy
from repro.core.types import MQWKResult, MWKResult, WhyNotQuery


class MQWKStepper:
    """Resumable Algorithm 3: ``refine(chunk)`` examines ``chunk``
    more query-point candidates and returns the current-best
    :class:`~repro.core.types.MQWKResult`.

    ``samples_examined`` counts query-point candidates — the budget
    unit of :class:`~repro.core.protocol.Budget.sample_budget` for
    this algorithm (each candidate internally runs a full
    ``sample_size``-sample MWK).
    """

    #: One MQWK "sample" is a whole inner MWK — hundreds of weight
    #: samples — so deadline probes refine candidate by candidate and
    #: interleaved rounds stay small, keeping chunk-boundary latency
    #: (deadline checks, job cancellation) at a few inner MWKs, not
    #: hundreds.
    min_chunk = 1
    round_chunk = 4

    def __init__(self, query: WhyNotQuery, *, sample_size: int = 800,
                 rng: np.random.Generator | None = None,
                 config: PenaltyConfig = DEFAULT_PENALTY,
                 include_originals: bool = True,
                 use_reuse: bool = True, context=None,
                 cache: IncomparableCache | None = None,
                 kth: tuple[np.ndarray, np.ndarray] | None = None,
                 sample_target: int = 800):
        rng = rng if rng is not None else np.random.default_rng(0)
        self._query = query
        self._config = config
        self._sample_size = int(sample_size)
        self._include_originals = include_originals
        self.sample_target = int(sample_target)
        self.samples_examined = 0
        self.rounds = 0

        self._mqp = modify_query_point(query, kth=kth)
        q_min = self._mqp.q_refined

        # Cache resolution: an explicitly injected cache (scatter-
        # gather merge) wins over the context's LRU, which wins over a
        # fresh traversal.
        if not use_reuse:
            self._cache = None
        elif cache is not None:
            self._cache = cache
        elif context is not None:
            self._cache = context.box_cache(query.q)
        else:
            self._cache = IncomparableCache(query.rtree, query.q)

        # Endpoint candidates: pure-MQP and pure-MWK refinements.
        # The pure-MWK endpoint consumes ``rng`` first and exactly the
        # way a standalone modify_weights_and_k would, so MQWK's joint
        # penalty is provably <= lam * MWK(same seed) — not just in
        # distribution.
        self._best_q = q_min
        self._best_mwk = MWKResult(
            weights_refined=query.why_not.copy(), k_refined=query.k,
            penalty=0.0, delta_k=0, delta_w=0.0, k_max=query.k,
            samples_examined=0, candidates_evaluated=0)
        self._best_penalty = config.gamma * self._mqp.penalty
        self._best_shares = (self._mqp.penalty, 0.0)

        pure_mwk = self._mwk_at(query.q, rng)
        pure_mwk_joint = config.lam * pure_mwk.penalty
        if pure_mwk_joint < self._best_penalty:
            self._best_q, self._best_mwk = query.q.copy(), pure_mwk
            self._best_penalty = pure_mwk_joint
            self._best_shares = (0.0, pure_mwk.penalty)

        # A degenerate box means every candidate is q itself — the
        # pure-MWK endpoint already covers it.
        self._degenerate = bool(np.array_equal(q_min, query.q))
        self._stream = (None if self._degenerate else
                        QueryPointSampleStream(q_min, query.q, rng))
        self._inner_entropy = stream_entropy(rng)
        self._candidate_index = 0

    def _mwk_at(self, q_prime: np.ndarray,
                rng: np.random.Generator) -> MWKResult:
        if self._cache is not None:
            inc = self._cache.partition(q_prime)
        else:
            inc = find_incomparable(self._query.rtree, q_prime)
        return _mwk_core(
            points=self._query.points, inc=inc, q=q_prime,
            why_not=self._query.why_not, k=self._query.k,
            sample_size=self._sample_size, rng=rng,
            config=self._config,
            include_originals=self._include_originals)

    @property
    def converged(self) -> bool:
        return self._degenerate or self._best_penalty == 0.0

    def refine(self, chunk: int) -> MQWKResult:
        """Examine up to ``chunk`` more box candidates; return the
        current best."""
        self.rounds += 1
        chunk = int(chunk)
        if self._stream is not None and chunk > 0:
            for q_prime in self._stream.take(chunk):
                index = self._candidate_index
                self._candidate_index += 1
                self.samples_examined += 1
                pq = penalty_query_point(self._query.q, q_prime)
                if self._config.gamma * pq >= self._best_penalty:
                    # The q-share alone already loses; MWK cannot go
                    # negative.  Skipping cannot change the final
                    # minimum, so chunked and one-shot still agree.
                    continue
                inner_rng = np.random.default_rng(
                    (self._inner_entropy, index))
                mwk_result = self._mwk_at(q_prime, inner_rng)
                joint = (self._config.gamma * pq
                         + self._config.lam * mwk_result.penalty)
                if joint < self._best_penalty:
                    self._best_q, self._best_mwk = q_prime, mwk_result
                    self._best_penalty = joint
                    self._best_shares = (pq, mwk_result.penalty)
        return self.result()

    def result(self) -> MQWKResult:
        """The current-best result, without further refinement."""
        return MQWKResult(
            q_refined=np.asarray(self._best_q, dtype=np.float64),
            weights_refined=self._best_mwk.weights_refined,
            k_refined=self._best_mwk.k_refined,
            penalty=float(self._best_penalty),
            q_penalty_share=float(self._best_shares[0]),
            wk_penalty_share=float(self._best_shares[1]),
            q_samples=self.samples_examined,
            mqp=self._mqp,
            mwk=self._best_mwk,
        )


def make_stepper(query: WhyNotQuery, *, sample_size: int = 800,
                 q_sample_size: int | None = None,
                 rng: np.random.Generator | None = None,
                 config: PenaltyConfig = DEFAULT_PENALTY,
                 include_originals: bool = True,
                 use_reuse: bool = True, context=None,
                 cache: IncomparableCache | None = None,
                 kth: tuple[np.ndarray, np.ndarray] | None = None,
                 ) -> MQWKStepper:
    """Build an :class:`MQWKStepper`; ``q_sample_size`` (default:
    ``sample_size``) becomes its default refinement target."""
    q_samples = (q_sample_size if q_sample_size is not None
                 else sample_size)
    return MQWKStepper(query, sample_size=sample_size, rng=rng,
                       config=config,
                       include_originals=include_originals,
                       use_reuse=use_reuse, context=context,
                       cache=cache, kth=kth,
                       sample_target=q_samples)


def modify_query_weights_and_k(query: WhyNotQuery, *,
                               sample_size: int = 800,
                               q_sample_size: int | None = None,
                               rng: np.random.Generator | None = None,
                               config: PenaltyConfig = DEFAULT_PENALTY,
                               include_originals: bool = True,
                               use_reuse: bool = True,
                               context=None,
                               cache: IncomparableCache | None = None,
                               kth: tuple[np.ndarray,
                                          np.ndarray] | None = None,
                               ) -> MQWKResult:
    """Run Algorithm 3 and return the best joint refinement.

    The one-shot form: an :class:`MQWKStepper` refined for a single
    ``q_sample_size``-candidate round, so chunked anytime refinement
    and this function agree exactly at equal totals and seed.

    Parameters
    ----------
    query:
        The why-not question.
    sample_size:
        ``|S|`` — weight samples per MWK invocation.
    q_sample_size:
        ``|Q|`` — query-point samples; defaults to ``sample_size``
        (the paper sets both sizes equal in its experiments).
    rng:
        Random generator (fixed default seed for reproducibility).
    config:
        Penalty tolerances (α, β, γ, λ).
    include_originals:
        Forwarded to MWK (mixed candidates).
    use_reuse:
        Disable to re-run the full ``FindIncom`` tree traversal per
        sample query point (the ablation of the paper's reuse
        technique).
    context:
        Optional :class:`~repro.engine.context.DatasetContext`; when
        given, the box-reuse :class:`IncomparableCache` for ``q`` is
        fetched from (and stored in) the context, so repeated
        questions about one product pay the traversal once.  Ignored
        when ``use_reuse`` is False.
    cache:
        Optional pre-built :class:`IncomparableCache` for ``q`` (the
        sharded scatter-gather merge path); wins over ``context``.
    kth:
        Optional precomputed per-vector k-th ``(ids, scores)``,
        forwarded to the inner MQP run.
    """
    stepper = make_stepper(query, sample_size=sample_size,
                           q_sample_size=q_sample_size, rng=rng,
                           config=config,
                           include_originals=include_originals,
                           use_reuse=use_reuse, context=context,
                           cache=cache, kth=kth)
    return stepper.refine(stepper.sample_target)
