"""MQWK — Modifying q, Wm and k simultaneously (Algorithm 3).

MQWK searches the joint refinement space by sampling:

1. Run MQP to obtain ``q_min`` — the closest fully-safe query point.
   Only query points in the box ``[q_min, q]`` can participate in an
   optimal joint answer: outside it, either the (Wm, k) part needs no
   change (and MQP already found the cheapest such point) or the
   q-penalty alone already exceeds MQP's total (Section 4.4).
2. Sample ``|Q|`` query points from that box.
3. For each sample ``q'`` run MWK, *reusing* a single R-tree traversal:
   the :class:`~repro.core.incomparable.IncomparableCache` collects all
   points not dominated by ``q`` once, and re-partitions them per
   sample with two vectorized comparisons.
4. Return the tuple ``(q', Wm', k')`` with the smallest Eq. (5) joint
   penalty.

The two box endpoints are always evaluated as candidates — ``(q_min,
Wm, k)`` (pure MQP) and ``(q, MWK(q))`` (pure MWK) — so MQWK's joint
penalty is never worse than either single-sided refinement, an
invariant the test suite checks.
"""

from __future__ import annotations

import numpy as np

from repro.core.incomparable import IncomparableCache, find_incomparable
from repro.core.mqp import modify_query_point
from repro.core.mwk import _mwk_core
from repro.core.penalty import (
    DEFAULT_PENALTY,
    PenaltyConfig,
    penalty_query_point,
)
from repro.core.sampling import sample_query_points
from repro.core.types import MQWKResult, MWKResult, WhyNotQuery


def modify_query_weights_and_k(query: WhyNotQuery, *,
                               sample_size: int = 800,
                               q_sample_size: int | None = None,
                               rng: np.random.Generator | None = None,
                               config: PenaltyConfig = DEFAULT_PENALTY,
                               include_originals: bool = True,
                               use_reuse: bool = True,
                               context=None) -> MQWKResult:
    """Run Algorithm 3 and return the best joint refinement.

    Parameters
    ----------
    query:
        The why-not question.
    sample_size:
        ``|S|`` — weight samples per MWK invocation.
    q_sample_size:
        ``|Q|`` — query-point samples; defaults to ``sample_size``
        (the paper sets both sizes equal in its experiments).
    rng:
        Random generator (fixed default seed for reproducibility).
    config:
        Penalty tolerances (α, β, γ, λ).
    include_originals:
        Forwarded to MWK (mixed candidates).
    use_reuse:
        Disable to re-run the full ``FindIncom`` tree traversal per
        sample query point (the ablation of the paper's reuse
        technique).
    context:
        Optional :class:`~repro.engine.context.DatasetContext`; when
        given, the box-reuse :class:`IncomparableCache` for ``q`` is
        fetched from (and stored in) the context, so repeated
        questions about one product pay the traversal once.  Ignored
        when ``use_reuse`` is False.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    q_samples = q_sample_size if q_sample_size is not None else sample_size

    mqp_result = modify_query_point(query)
    q_min = mqp_result.q_refined

    if not use_reuse:
        cache = None
    elif context is not None:
        cache = context.box_cache(query.q)
    else:
        cache = IncomparableCache(query.rtree, query.q)

    def mwk_at(q_prime: np.ndarray) -> MWKResult:
        if cache is not None:
            inc = cache.partition(q_prime)
        else:
            inc = find_incomparable(query.rtree, q_prime)
        return _mwk_core(
            points=query.points, inc=inc, q=q_prime,
            why_not=query.why_not, k=query.k, sample_size=sample_size,
            rng=rng, config=config, include_originals=include_originals)

    # Endpoint candidates: pure-MQP and pure-MWK refinements.
    best_q = q_min
    best_mwk = MWKResult(
        weights_refined=query.why_not.copy(), k_refined=query.k,
        penalty=0.0, delta_k=0, delta_w=0.0, k_max=query.k,
        samples_examined=0, candidates_evaluated=0)
    best_penalty = config.gamma * mqp_result.penalty
    best_shares = (mqp_result.penalty, 0.0)

    pure_mwk = mwk_at(query.q)
    pure_mwk_joint = config.lam * pure_mwk.penalty
    if pure_mwk_joint < best_penalty:
        best_q, best_mwk = query.q.copy(), pure_mwk
        best_penalty = pure_mwk_joint
        best_shares = (0.0, pure_mwk.penalty)

    for q_prime in sample_query_points(q_min, query.q, q_samples, rng):
        pq = penalty_query_point(query.q, q_prime)
        if config.gamma * pq >= best_penalty:
            # The q-share alone already loses; MWK cannot go negative.
            continue
        mwk_result = mwk_at(q_prime)
        joint = config.gamma * pq + config.lam * mwk_result.penalty
        if joint < best_penalty:
            best_q, best_mwk = q_prime, mwk_result
            best_penalty = joint
            best_shares = (pq, mwk_result.penalty)

    return MQWKResult(
        q_refined=np.asarray(best_q, dtype=np.float64),
        weights_refined=best_mwk.weights_refined,
        k_refined=best_mwk.k_refined,
        penalty=float(best_penalty),
        q_penalty_share=float(best_shares[0]),
        wk_penalty_share=float(best_shares[1]),
        q_samples=q_samples,
        mqp=mqp_result,
        mwk=best_mwk,
    )
