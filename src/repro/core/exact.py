"""Exact refinement oracles (2-D) for quality evaluation.

MWK is a sampling approximation; the paper evaluates its quality only
by its achieved penalty.  In two dimensions the *exact* optimum of the
(Wm, k) refinement is computable in closed form for a single why-not
vector, because the weighting space is the segment ``w1 in [0, 1]``
and the rank of ``q`` is a piecewise-constant function of ``w1`` whose
breakpoints are the at-most-``n`` solutions of ``f(w, p) = f(w, q)``:

* enumerate the elementary intervals of the rank function;
* a candidate refinement for an interval with rank ``r <= k'_max`` is
  the interval's closest point to the original ``w1`` (the penalty is
  monotone in ``|w1 - w1_orig|``);
* minimize Eq. (4) over all candidates (plus breakpoint ties).

This module exists for *validation*: tests and the sampler-quality
ablation compare MWK's sampled answers against :func:`exact_mwk_2d`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.penalty import DEFAULT_PENALTY, PenaltyConfig
from repro.geometry.vectors import MAX_SIMPLEX_DISTANCE
from repro.topk.scan import RANK_EPS, rank_of_scan

_ATOL = 1e-12


@dataclass(frozen=True)
class ExactMWKResult:
    """The provably optimal single-vector (w, k) refinement in 2-D."""

    weight_refined: np.ndarray
    k_refined: int
    penalty: float
    k_max: int


def _rank_profile(points, q):
    """Breakpoints and per-interval beat counts of ``w1 -> rank(q)``.

    Returns ``(bounds, counts)`` where ``bounds`` has length ``m + 1``
    and ``counts[j]`` is the number of points beating ``q`` anywhere
    strictly inside ``(bounds[j], bounds[j + 1])``.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    qv = np.asarray(q, dtype=np.float64)
    delta = pts - qv
    a = delta[:, 0] - delta[:, 1]
    b = delta[:, 1]
    with np.errstate(divide="ignore", invalid="ignore"):
        roots = np.where(np.abs(a) > _ATOL, -b / a, np.nan)
    inside = np.isfinite(roots) & (roots > _ATOL) & (roots < 1 - _ATOL)
    bounds = np.concatenate(([0.0], np.unique(roots[inside]), [1.0]))
    mids = 0.5 * (bounds[:-1] + bounds[1:])
    g_mid = np.outer(mids, a) + b
    counts = np.count_nonzero(g_mid < -RANK_EPS, axis=1)
    return bounds, counts


def exact_mwk_2d(points, q, w0, k: int,
                 config: PenaltyConfig = DEFAULT_PENALTY,
                 ) -> ExactMWKResult:
    """Exact optimum of Definition 9 for ``d = 2`` and ``|Wm| = 1``.

    Parameters
    ----------
    points:
        The dataset (2-D).
    q:
        The query point.
    w0:
        The (single) why-not weighting vector.
    k:
        The original top-k parameter.
    config:
        The α/β tolerances of Eq. (4).

    Notes
    -----
    The Euclidean weight distance in 2-D is ``sqrt(2) * |w1 - w1'|``
    (both coordinates move in lockstep on the simplex), so the ΔWm
    term of Eq. (4) reduces to ``beta * |w1 - w1'|`` after the
    ``sqrt(2)`` normalization cancels.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if pts.shape[1] != 2:
        raise ValueError("exact_mwk_2d requires 2-dimensional data")
    w0 = np.asarray(w0, dtype=np.float64)
    w1_orig = float(w0[0])

    k_max = rank_of_scan(pts, w0, q)
    if k_max <= k:
        return ExactMWKResult(w0.copy(), k, 0.0, k_max)
    dk_max = k_max - k

    def candidate_penalty(rank: int, w1: float) -> float:
        dk = max(0, max(k, rank) - k)
        dw = MAX_SIMPLEX_DISTANCE * abs(w1 - w1_orig)
        return (config.alpha * dk / dk_max
                + config.beta * dw / MAX_SIMPLEX_DISTANCE)

    bounds, counts = _rank_profile(pts, q)

    # Seed with the pure-k fallback (keep w0, raise k to k_max).
    best_penalty = config.alpha
    best_w1, best_rank = w1_orig, k_max

    # Interval candidates: the closest point of each qualifying
    # interval to the original w1.
    for j, count in enumerate(counts):
        rank = int(count) + 1
        if rank > k_max:
            continue
        w1_star = min(max(w1_orig, float(bounds[j])),
                      float(bounds[j + 1]))
        penalty = candidate_penalty(rank, w1_star)
        if penalty < best_penalty - 1e-15:
            best_penalty, best_w1, best_rank = penalty, w1_star, rank

    # Breakpoint candidates: ties can dip the rank below both
    # neighbouring intervals.
    for w1_star in bounds[1:-1]:
        rank = rank_of_scan(pts, [w1_star, 1 - w1_star], q)
        if rank > k_max:
            continue
        penalty = candidate_penalty(rank, float(w1_star))
        if penalty < best_penalty - 1e-15:
            best_penalty, best_w1, best_rank = (penalty,
                                                float(w1_star), rank)

    return ExactMWKResult(
        weight_refined=np.array([best_w1, 1.0 - best_w1]),
        k_refined=max(k, best_rank),
        penalty=float(best_penalty),
        k_max=k_max,
    )
