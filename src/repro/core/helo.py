"""He & Lo's why-not top-k refinement [14], as a comparison baseline.

Section 3 of the WQRTQ paper argues that its problem *cannot* be
solved by running He & Lo's why-not top-k refinement once per why-not
weighting vector: each per-vector modification is individually
minimal, but the assembled answer prices every vector's `k'` increase
independently, whereas WQRTQ's Eq. (4) shares a single ``k'`` across
the set — so the total penalty "might not be the minimum".

This module implements the relevant slice of He & Lo — *modify the
weighting vector (and k) so that a target point enters the top-k* —
using this library's own machinery (the target point is ``q``, per
the paper's transformation), plus the naive per-vector composition
:func:`compose_per_vector`.  Tests and the ablation bench then verify
the paper's claim: MWK's jointly-priced answer is never worse than
the composition, and is strictly better on workloads where the
vectors' required ranks differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incomparable import find_incomparable
from repro.core.penalty import (
    DEFAULT_PENALTY,
    PenaltyConfig,
    penalty_weights_k,
)
from repro.core.sampling import (
    ranks_under_weights,
    sample_weights_on_hyperplanes,
)
from repro.core.types import WhyNotQuery


@dataclass(frozen=True)
class HeLoSingleResult:
    """Minimal modification of one weighting vector (He & Lo style)."""

    weight_refined: np.ndarray
    k_refined: int
    delta_w: float
    rank: int


def modify_single_weight(points, q, w, k: int, *, sample_size: int = 400,
                         rng: np.random.Generator | None = None,
                         alpha: float = 0.5,
                         beta: float = 0.5) -> HeLoSingleResult:
    """Minimal (Δw, Δk) refinement for ONE weighting vector.

    Sampling-based analogue of He & Lo's per-weight refinement: draw
    candidate vectors from the culprit hyperplanes of ``w``, price
    each with a *per-vector* normalized penalty, and keep the best —
    including the pure-``k`` fallback (keep ``w``, raise ``k`` to
    ``rank(q, w)``).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    wv = np.asarray(w, dtype=np.float64)
    qv = np.asarray(q, dtype=np.float64)

    inc = find_incomparable(pts, qv)
    inc_pts = pts[inc.incomparable_ids]
    dom_pts = pts[inc.dominating_ids]
    rank0 = int(ranks_under_weights(wv.reshape(1, -1), inc_pts,
                                    dom_pts, qv)[0])
    if rank0 <= k:
        return HeLoSingleResult(wv.copy(), k, 0.0, rank0)
    dk_max = rank0 - k

    best_w, best_k = wv.copy(), rank0
    best_cost = alpha          # the pure-k fallback

    if inc.n_incomparable:
        samples = sample_weights_on_hyperplanes(
            inc_pts, qv, sample_size, rng, anchors=wv.reshape(1, -1))
        ranks = ranks_under_weights(samples, inc_pts, dom_pts, qv)
        keep = ranks <= rank0
        samples, ranks = samples[keep], ranks[keep]
        dists = np.linalg.norm(samples - wv, axis=1)
        dk = np.maximum(0, np.maximum(ranks, k) - k)
        costs = alpha * dk / dk_max + beta * dists / np.sqrt(2.0)
        if len(costs):
            j = int(np.argmin(costs))
            if costs[j] < best_cost:
                best_w = samples[j]
                best_k = max(k, int(ranks[j]))
                best_cost = float(costs[j])

    return HeLoSingleResult(
        weight_refined=best_w, k_refined=int(best_k),
        delta_w=float(np.linalg.norm(best_w - wv)), rank=rank0)


@dataclass(frozen=True)
class HeLoComposedResult:
    """Per-vector refinements assembled into a WQRTQ-shaped answer."""

    weights_refined: np.ndarray
    k_refined: int
    penalty: float
    per_vector_k: np.ndarray


def compose_per_vector(query: WhyNotQuery, *, sample_size: int = 400,
                       rng: np.random.Generator | None = None,
                       config: PenaltyConfig = DEFAULT_PENALTY,
                       ) -> HeLoComposedResult:
    """The straw-man of Section 3: refine each why-not vector alone.

    Runs :func:`modify_single_weight` independently per vector, then
    assembles ``(Wm', k' = max per-vector k')`` and prices the result
    with the *shared* Eq. (4) — the price WQRTQ would pay for the same
    answer.  Because each vector optimized its own trade-off without
    knowing the shared ``k'``, the assembled penalty is in general
    suboptimal, which is exactly the paper's argument for a unified
    framework.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    singles = [
        modify_single_weight(query.points, query.q, w, query.k,
                             sample_size=sample_size, rng=rng,
                             alpha=config.alpha, beta=config.beta)
        for w in query.why_not
    ]
    weights = np.asarray([s.weight_refined for s in singles])
    k_refined = max(s.k_refined for s in singles)
    k_max = int(query.ranks().max())
    penalty = penalty_weights_k(query.why_not, weights, query.k,
                                k_refined, k_max, config)
    return HeLoComposedResult(
        weights_refined=weights,
        k_refined=k_refined,
        penalty=float(penalty),
        per_vector_k=np.asarray([s.k_refined for s in singles]),
    )
