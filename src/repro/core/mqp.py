"""MQP — Modifying the Query Point (Algorithm 1).

Given a why-not question, MQP finds the refined product ``q'`` closest
to ``q`` (Eq. 1) whose reverse top-k result contains every why-not
vector:

1. For each why-not vector ``w_i``, retrieve its top-k-th point ``p_i``
   by progressive branch-and-bound search (BRS) on the R-tree.
2. Solve the quadratic program

       min ||q' - q||²
       s.t. f(w_i, q') <= f(w_i, p_i)   for every i      (safe region)
            0 <= q' <= q                                  (shrink only)

   with the interior-point solver of :mod:`repro.qp`.

The QP replaces the explicit (and dimensionally cursed) half-space
intersection; Lemma 2 guarantees feasibility of any point in the safe
region, and the region always contains the origin, so the program is
feasible by construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.penalty import penalty_query_point
from repro.core.safe_region import kth_points_for
from repro.core.types import MQPResult, WhyNotQuery
from repro.qp.problems import closest_point_in_halfspaces
from repro.qp.solver import QPStatus


def modify_query_point(query: WhyNotQuery, *,
                       use_rtree: bool = True,
                       kth: tuple[np.ndarray, np.ndarray] | None = None,
                       ) -> MQPResult:
    """Run Algorithm 1 and return the refined query point.

    Parameters
    ----------
    query:
        The validated why-not question.
    use_rtree:
        When False, the k-th points are found by sequential scan
        instead of BRS (ablation hook; identical results).
    kth:
        Optional precomputed ``(ids, scores)`` of the per-vector k-th
        ranked points (shape ``(m,)`` each), e.g. from a sharded
        scatter-gather merge; skips the retrieval step entirely.

    Raises
    ------
    RuntimeError
        If the interior-point solver fails to converge (should not
        happen: the program is always feasible).
    """
    if kth is not None:
        kth_ids = np.asarray(kth[0], dtype=np.int64)
        kth_scores = np.asarray(kth[1], dtype=np.float64)
    else:
        source = query.rtree if use_rtree else query.points
        kth_ids, kth_scores = kth_points_for(source, query.why_not,
                                             query.k)

    result = closest_point_in_halfspaces(
        query.q,
        query.why_not,
        kth_scores,
        lower=np.zeros(query.dim),
        upper=query.q,
    )
    if result.status is not QPStatus.OPTIMAL:
        raise RuntimeError(
            f"MQP quadratic program did not converge: {result.status}")

    q_refined = _polish(result.x, query, kth_scores)
    return MQPResult(
        q_refined=q_refined,
        penalty=penalty_query_point(query.q, q_refined),
        kth_points=kth_ids,
        kth_scores=kth_scores,
        qp_iterations=result.iterations,
        kkt_residual=result.kkt_residual,
    )


class MQPStepper:
    """Anytime adapter for the exact Algorithm 1.

    MQP solves a quadratic program — there is no sample knob to
    spend a budget on — so the stepper computes the full answer in
    its first ``refine`` round and reports ``converged`` from then
    on.  It exists so every registered algorithm speaks the same
    ``start``/``refine`` contract and a mixed budgeted batch needs no
    per-algorithm special-casing.
    """

    sample_target = 1
    min_chunk = 1
    round_chunk = 1

    def __init__(self, query: WhyNotQuery, *, use_rtree: bool = True,
                 kth: tuple[np.ndarray, np.ndarray] | None = None):
        self._query = query
        self._use_rtree = use_rtree
        self._kth = kth
        self._result: MQPResult | None = None
        self.samples_examined = 0
        self.rounds = 0

    @property
    def converged(self) -> bool:
        return self._result is not None

    def refine(self, chunk: int = 0) -> MQPResult:
        self.rounds += 1
        if self._result is None:
            self._result = modify_query_point(
                self._query, use_rtree=self._use_rtree,
                kth=self._kth)
            self.samples_examined = 1
        return self._result

    def result(self) -> MQPResult:
        return self.refine(0) if self._result is None else self._result


def _polish(x: np.ndarray, query: WhyNotQuery,
            kth_scores: np.ndarray) -> np.ndarray:
    """Clamp interior-point round-off so the certificate is exact.

    The IPM returns points a hair inside (or outside) the boundary;
    we project onto the box and, if any score constraint is violated by
    float noise, scale toward the origin (which satisfies all
    constraints strictly whenever the k-th scores are positive).
    """
    q_refined = np.clip(x, 0.0, query.q)
    slack = query.why_not @ q_refined - kth_scores
    worst = float(np.max(slack, initial=0.0))
    if worst <= 0.0:
        return q_refined
    # Scale down until feasible: scores scale linearly with q_refined.
    scores = query.why_not @ q_refined
    with np.errstate(divide="ignore"):
        ratios = np.where(scores > 0, kth_scores / scores, 1.0)
    scale = float(np.clip(np.min(ratios), 0.0, 1.0))
    return q_refined * scale
