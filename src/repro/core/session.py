"""Session — the one user-facing facade over the WQRTQ framework.

A :class:`Session` binds one warmed
:class:`~repro.engine.context.DatasetContext` (catalogue + R-tree +
LRU partition caches) and answers typed
:class:`~repro.core.protocol.Question` objects through the shared
executor — interactively (:meth:`ask`), in bulk
(:meth:`ask_batch`, optionally parallel), or explanatorily
(:meth:`explain`, :meth:`reverse_topk`).  It unifies the three
historical front doors:

* ``WQRTQ`` (interactive, one product)  → ``session.ask(question)``
* ``WhyNotBatch`` (queued triples)      → ``session.ask_batch([...])``
* registry-backed serving (HTTP)        → the service wraps one
  Session per catalogue, so the wire answers are byte-identical to
  the library's ``Answer.to_dict()``.

>>> import numpy as np
>>> from repro.core.session import Session
>>> from repro.core.protocol import Question
>>> P = np.random.default_rng(0).random((64, 2)) + 0.05
>>> session = Session(P)
>>> session.algorithms()
('mqp', 'mwk', 'mqwk')
"""

from __future__ import annotations

import numpy as np

from repro.core.penalty import DEFAULT_PENALTY, PenaltyConfig
from repro.core.protocol import Answer, Question, summarize_answers
from repro.core.registry import algorithm_names
from repro.engine.context import DatasetContext

__all__ = ["Session"]


class Session:
    """Ask why-not questions against one shared, warmed catalogue.

    Parameters
    ----------
    points:
        The catalogue ``P`` as an ``(n, d)`` array.  Ignored when
        ``context`` or ``catalogue`` is given.
    context:
        Optional pre-existing :class:`DatasetContext` to ride on —
        e.g. one owned by a :class:`~repro.service.CatalogueRegistry`
        so library and HTTP traffic share the same caches.
    catalogue:
        Optional :class:`~repro.data.catalogue.Catalogue` to *follow*:
        each :meth:`ask` / :meth:`ask_batch` call **pins** the
        catalogue's current snapshot at entry and answers every item
        of that call against it, so one batch is snapshot-consistent
        even while writers advance the version, and the next call
        automatically sees the newest data.  Mutually exclusive with
        ``points``/``context``.
    penalty_config:
        Tolerance weights α/β/γ/λ (defaults: all 0.5, as in the
        paper's experiments).
    warm:
        Build the R-tree at construction (default) so the first
        question does not pay index construction.
    """

    def __init__(self, points=None, *,
                 context: DatasetContext | None = None,
                 catalogue=None,
                 penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                 warm: bool = True):
        given = sum(x is not None for x in (points, context, catalogue))
        if given == 0:
            raise ValueError("Session needs points, a context or a "
                             "catalogue")
        if given > 1:
            raise ValueError("pass exactly one of points, context or "
                             "catalogue")
        if points is not None:
            context = DatasetContext(points)
        self._catalogue = catalogue
        self._context = context
        self.penalty_config = penalty_config
        self._cost_model = None   # lazy; see ``cost_model``
        if warm:
            self.context.tree

    # -- introspection -------------------------------------------------

    @property
    def context(self) -> DatasetContext:
        """The snapshot this session currently answers against.

        Fixed for the session's lifetime when built from points or a
        context; the catalogue's *latest* snapshot when following a
        :class:`~repro.data.catalogue.Catalogue`.  Methods read it
        once at entry, so each call is internally snapshot-consistent.
        """
        if self._catalogue is not None:
            return self._catalogue.snapshot
        return self._context

    @property
    def catalogue_version(self) -> int:
        """Version of the snapshot :meth:`ask` would pin right now."""
        return self.context.version

    @property
    def points(self) -> np.ndarray:
        return self.context.points

    @property
    def dim(self) -> int:
        return self.context.dim

    @property
    def tree(self):
        return self.context.tree

    @staticmethod
    def algorithms() -> tuple[str, ...]:
        """Names of the registered refinement algorithms."""
        return algorithm_names()

    # -- question construction -----------------------------------------

    def question(self, q, k: int, why_not, *, algorithm: str = "mqp",
                 options=None, id: str | None = None) -> Question:
        """Convenience constructor for a validated :class:`Question`."""
        return Question(q=q, k=k, why_not=why_not, algorithm=algorithm,
                        options=options or {}, id=id)

    # -- answering -----------------------------------------------------

    def ask(self, question: Question, *, seed: int = 0) -> Answer:
        """Answer one typed question.

        Catalogue-dependent failures (``k > |P|``, a vector that is
        not actually missing, an algorithm error) come back as a
        failed :class:`Answer`, never as an exception.  The snapshot
        is pinned at entry; the answer's ``catalogue_version`` says
        which one.

        A question carrying a :class:`~repro.core.protocol.Budget`
        is answered anytime-style: chunked refinement until the
        budget's first limit (sample budget, deadline, penalty
        tolerance), returning the best answer found — with
        :class:`~repro.core.protocol.Quality` metadata attached.
        """
        from repro.engine.executor import answer_question

        context = self.context
        return answer_question(
            context, question, index=0,
            rng=np.random.default_rng(int(seed)),
            penalty_config=self.penalty_config,
            observer=lambda item, answer:
                self._record_timing(context, item, answer))

    def ask_stream(self, question: Question, *, seed: int = 0,
                   chunk: int | None = None):
        """Stream successive refinements of one question.

        A generator of :class:`Answer`\\ s with non-increasing
        penalty — yield one, show it, keep consuming for better ones.
        The final yielded answer is exactly what :meth:`ask` returns
        for the same question and seed.  ``chunk`` caps the samples
        examined per round (default: an eighth of the sample target,
        so an unbudgeted stream still refines in several visible
        steps).  The snapshot is pinned at entry, like :meth:`ask`.
        """
        from repro.engine.executor import iter_answers

        return iter_answers(
            self.context, question, index=0,
            rng=np.random.default_rng(int(seed)),
            penalty_config=self.penalty_config, chunk=chunk)

    def ask_batch(self, questions, *, workers: int = 1,
                  seed: int = 0, deadline_ms: float | None = None,
                  interleave: bool = True) -> list[Answer]:
        """Answer many typed questions, optionally in parallel.

        Item ``i`` uses ``default_rng(seed + i)``, so results are
        identical for any ``workers`` value.  The whole batch answers
        against one snapshot, pinned at entry — a concurrent writer
        cannot make item 7 see different data than item 3.

        ``deadline_ms`` imposes a batch-wide wall-clock budget:
        every question takes the anytime path and the serial loop
        interleaves refinement across the batch (round-robin chunks)
        instead of letting early questions starve later ones; pass
        ``interleave=False`` to measure the head-of-line alternative.
        """
        from repro.engine.executor import execute_questions

        context = self.context
        return execute_questions(
            context, questions, seed=int(seed),
            workers=int(workers), penalty_config=self.penalty_config,
            deadline_ms=deadline_ms, interleave=interleave,
            observer=lambda item, answer:
                self._record_timing(context, item, answer))

    @staticmethod
    def summarize(answers, *, wall_seconds: float | None = None) -> dict:
        """Aggregate report over :meth:`ask_batch` output."""
        return summarize_answers(answers, wall_seconds=wall_seconds)

    # -- planning ------------------------------------------------------

    @property
    def cost_model(self):
        """This session's :class:`~repro.planner.model.CostModel`.

        Created lazily and calibrated automatically: every
        :meth:`ask` / :meth:`ask_batch` feeds its executor-recorded
        timings back through the engine's observer seam, so
        :meth:`explain_plan` estimates tighten as the session runs.
        """
        if self._cost_model is None:
            from repro.planner.model import CostModel

            self._cost_model = CostModel()
        return self._cost_model

    def _record_timing(self, context, question: Question,
                       answer: Answer) -> None:
        from repro.planner.model import sample_target

        quality = answer.quality
        samples = (quality.samples_examined if quality is not None
                   else sample_target(question.algorithm,
                                      budget=question.budget,
                                      options=question.options))
        self.cost_model.observe(
            algorithm=question.algorithm, n=context.n, d=context.dim,
            k=question.k, m=question.n_why_not, samples=samples,
            elapsed=answer.elapsed, options=question.options)

    def explain_plan(self, question: Question, *, workers: int = 0,
                     shards: int = 1, pooled: bool = False):
        """The cost-based :class:`~repro.core.protocol.Plan` for one
        question, *without executing it*.

        In-library sessions always plan the ``session`` path unless
        told about a serving topology (``pooled``/``workers``/
        ``shards`` — the HTTP daemon passes its own).  Render the
        result with :func:`repro.planner.render_plan`.
        """
        from repro.planner import build_plan

        context = self.context
        return build_plan(
            question, n=context.n, d=context.dim,
            model=self.cost_model,
            catalogue_version=context.version,
            workers=int(workers), shards=int(shards), pooled=pooled)

    # -- aspect (i): explanation and the original query ----------------

    def explain(self, question: Question, *,
                max_culprits: int | None = None):
        """Why is each why-not vector missing?  (The culprit points.)"""
        from repro.core.explain import explain_why_not

        return explain_why_not(self.tree, question.q, question.why_not,
                               question.k, max_culprits=max_culprits)

    def reverse_topk(self, q, k: int, *, weights=None):
        """The original reverse top-k query for ``q``.

        With ``weights`` (the bichromatic preference set ``W``):
        sorted indices of the members.  Without (monochromatic mode,
        2-D only): qualifying ``w1`` intervals.
        """
        from repro.rtopk.bichromatic import brtopk_rta
        from repro.rtopk.mono import mrtopk_2d

        # One snapshot read for the whole call: tree and points must
        # come from the same version when following a live catalogue.
        context = self.context
        q = np.asarray(q, dtype=np.float64).reshape(-1)
        if weights is not None:
            wts = np.atleast_2d(np.asarray(weights, dtype=np.float64))
            return brtopk_rta(context.tree, wts, q, int(k))
        if context.dim != 2:
            raise ValueError("monochromatic result enumeration is "
                             "implemented for 2-D data")
        return mrtopk_2d(context.points, q, int(k))

    def missing_weights(self, q, k: int, weights) -> np.ndarray:
        """``W \\ BRTOPk(q)`` — the legal why-not vectors (Def. 5)."""
        wts = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        members = set(self.reverse_topk(q, k, weights=wts).tolist())
        keep = [i for i in range(len(wts)) if i not in members]
        return wts[keep]

    def __repr__(self) -> str:   # pragma: no cover - cosmetic
        return (f"Session(n={self.context.n}, d={self.context.dim}, "
                f"algorithms={list(self.algorithms())})")
