"""``FindIncom``: dominating / incomparable point discovery.

Algorithm 2 (lines 20-29) of the paper finds, via a branch-and-bound
R-tree traversal, the set ``D`` of points dominating the query point
and the set ``I`` of points incomparable with it.  Subtrees whose MBR is
entirely dominated by ``q`` are pruned: no point inside can ever
outrank ``q``, under any weighting vector.

For MQWK the traversal result must be *reused* across many sample query
points ``q' ∈ [q_min, q]``.  Because every such ``q'`` is component-wise
``<= q``, any point dominated by ``q`` is also dominated by ``q'``
(``q' <= q <= x``), so one traversal w.r.t. ``q`` yields a candidate
superset valid for the whole box; per-sample partitions are then pure
vectorized NumPy over the cached candidate array
(:class:`IncomparableCache`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.dominance import dominance_partition
from repro.index.rtree import RTree


@dataclass(frozen=True)
class IncomparableResult:
    """Output of one ``FindIncom`` run for a fixed query point."""

    dominating_ids: np.ndarray
    incomparable_ids: np.ndarray

    @property
    def n_dominating(self) -> int:
        return int(len(self.dominating_ids))

    @property
    def n_incomparable(self) -> int:
        return int(len(self.incomparable_ids))

    @property
    def k_floor(self) -> int:
        """Best achievable rank of q: ``|D| + 1`` (Section 4.3)."""
        return self.n_dominating + 1

    @property
    def k_ceiling(self) -> int:
        """Worst relevant rank of q: ``|D| + |I| + 1``."""
        return self.n_dominating + self.n_incomparable + 1


def find_incomparable(source, q) -> IncomparableResult:
    """Run ``FindIncom`` for a single query point.

    Parameters
    ----------
    source:
        :class:`RTree` (branch-and-bound, with dominated-subtree
        pruning) or a raw ``(n, d)`` array (vectorized partition).
    q:
        The query point.
    """
    if isinstance(source, RTree):
        candidate_ids = _collect_not_dominated(source, q)
        pts = source.points[candidate_ids]
    else:
        pts = np.atleast_2d(np.asarray(source, dtype=np.float64))
        candidate_ids = np.arange(len(pts))
    dom_local, inc_local, _ = dominance_partition(pts, q)
    return IncomparableResult(
        dominating_ids=candidate_ids[dom_local],
        incomparable_ids=candidate_ids[inc_local],
    )


def _collect_not_dominated(tree: RTree, q) -> np.ndarray:
    """Ids of all points *not* dominated by ``q`` (tree traversal).

    Implements lines 20-29 of Algorithm 2: descend only into subtrees
    whose MBR is not fully dominated by ``q``.
    """
    qv = np.asarray(q, dtype=np.float64)
    out: list[np.ndarray] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        tree.record_access(node)
        if node.is_leaf:
            pts = node.child_lowers
            dominated = (np.all(pts >= qv, axis=1)
                         & np.any(pts > qv, axis=1))
            keep = np.asarray(node.point_ids)[~dominated]
            if len(keep):
                out.append(keep)
        else:
            for child in node.children:
                if not child.mbr.fully_dominated_by(qv):
                    stack.append(child)
    if not out:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(out).astype(np.int64)


class IncomparableCache:
    """Reusable ``FindIncom`` for all query points in the box
    ``[lower, q]``.

    One R-tree traversal w.r.t. the box's *upper* corner ``q`` collects
    every point not dominated by ``q`` — a superset of the points
    relevant to any ``q'`` with ``q' <= q`` (see module docstring).
    :meth:`partition` then classifies the cached candidates against a
    specific ``q'`` with two vectorized comparisons.

    This is the paper's "reuse technique" (Section 4.4): MQWK calls
    MWK once per sample query point without re-traversing the R-tree.
    """

    def __init__(self, source, q):
        self.q = np.asarray(q, dtype=np.float64)
        if isinstance(source, RTree):
            self.candidate_ids = _collect_not_dominated(source, self.q)
            self.candidates = source.points[self.candidate_ids]
            self.tree_traversals = 1
        else:
            pts = np.atleast_2d(np.asarray(source, dtype=np.float64))
            # Pre-filter: points dominated by q never matter in the box.
            dominated = (np.all(pts >= self.q, axis=1)
                         & np.any(pts > self.q, axis=1))
            self.candidate_ids = np.nonzero(~dominated)[0]
            self.candidates = pts[self.candidate_ids]
            self.tree_traversals = 0

    @classmethod
    def from_candidates(cls, points, q,
                        candidate_ids) -> "IncomparableCache":
        """Build a cache from an already-known candidate id set.

        The scatter-gather merge path: shard workers computed the
        not-dominated-by-``q`` rows, so the front door's finisher can
        seed the cache without any traversal.  Only the candidate
        *set* matters downstream — :meth:`partition` output is
        consumed order-canonicalized — so ``candidate_ids`` may be in
        any order (the merge ships them sorted ascending).
        """
        cache = object.__new__(cls)
        cache.q = np.asarray(q, dtype=np.float64)
        cache.candidate_ids = np.asarray(candidate_ids,
                                         dtype=np.int64)
        cache.candidates = np.asarray(
            points, dtype=np.float64)[cache.candidate_ids]
        cache.tree_traversals = 0
        return cache

    def remapped(self, row_map: np.ndarray) -> "IncomparableCache":
        """This cache with its candidate ids renumbered.

        A catalogue mutation that *removes* rows compacts the row
        space, so a cache that survives invalidation (none of its
        candidates changed) still needs its ids translated through
        ``row_map`` (old row → new row).  The candidate coordinates
        are shared, not copied — survival implies they are unchanged
        — and no traversal is performed.
        """
        clone = object.__new__(IncomparableCache)
        clone.q = self.q
        clone.candidate_ids = row_map[self.candidate_ids]
        clone.candidates = self.candidates
        clone.tree_traversals = 0
        return clone

    def partition(self, q_prime) -> IncomparableResult:
        """``FindIncom`` result for ``q' <= q`` from the cache."""
        qp = np.asarray(q_prime, dtype=np.float64)
        if np.any(qp > self.q + 1e-12):
            raise ValueError("reuse cache only valid for q' <= q")
        dom_local, inc_local, _ = dominance_partition(self.candidates, qp)
        return IncomparableResult(
            dominating_ids=self.candidate_ids[dom_local],
            incomparable_ids=self.candidate_ids[inc_local],
        )
