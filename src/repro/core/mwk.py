"""MWK — Modifying the why-not vectors and k (Algorithm 2).

The exact problem (find ``(Wm', k')`` minimizing Eq. 4 subject to
``rank(q, w') <= k'`` for every refined vector) would require solving
``|Wm| · 2^|I|`` quadratic programs in the worst case, so the paper
trades exactness for a sampling scheme:

1. ``FindIncom``: partition the dataset into points dominating ``q``
   (``D``), incomparable with it (``I``), and dominated (irrelevant).
2. Sample ``|S|`` weighting vectors from the hyperplanes spanned by
   ``q`` and the points of ``I`` (the only places optimal refinements
   can live, He & Lo [14]).
3. Compute the rank of ``q`` under every sample *from D and I alone*
   (dominating points always precede ``q``, dominated ones never do).
4. Sort samples by rank and evaluate, for every rank threshold, the
   best candidate the pool admits at that threshold, with
   ``k' = max(k, rank)``.

Candidates with rank beyond ``k'_max = max_i rank(q, w_i)`` are
discarded: the pure-``k`` refinement ``(Wm, k'_max)`` — which the scan
seeds its minimum with — always beats them (Lemma 4/5).

Deviations from the pseudo-code (documented in DESIGN.md):

* The original why-not vectors are injected into the sample pool with
  their true ranks and zero distance (``include_originals=True``).
  This lets the scan form *mixed* candidates (modify some vectors,
  keep others and raise ``k`` slightly), which the paper's scan cannot
  represent; it never increases the returned penalty.  Disable for
  strict paper fidelity.
* The paper's greedy working-candidate scan is replaced by an exact
  per-threshold assignment: at rank threshold ``r``, each why-not
  vector is matched to its *nearest* pool sample of rank ``<= r``
  (a vectorized prefix-minimum over the rank-sorted pool).  Since
  Eq. (4) is monotone in the per-vector distances, this dominates the
  greedy scan at every threshold — and it makes the best penalty a
  monotone function of the sample pool, the property the anytime
  stepper's non-increasing-penalty contract rests on.

Anytime execution
-----------------
:class:`MWKStepper` is the resumable form: ``refine(chunk)`` draws
``chunk`` more samples from a chunk-invariant
:class:`~repro.core.sampling.WeightSampleStream` and re-scans the
accumulated pool.  Because the stream is a fixed sequence and the scan
is pool-monotone, penalties never increase across rounds and the
answer after refining to ``N`` total samples is *identical* to the
one-shot :func:`modify_weights_and_k` at ``sample_size=N`` and the
same seed.  ``modify_weights_and_k`` itself is the stepper run for a
single round.
"""

from __future__ import annotations

import numpy as np

from repro.core.incomparable import IncomparableResult, find_incomparable
from repro.core.penalty import (
    DEFAULT_PENALTY,
    PenaltyConfig,
    delta_weights,
)
from repro.core.sampling import (
    WeightSampleStream,
    inject_why_not_vectors,
    ranks_under_weights,
)
from repro.core.types import MWKResult, WhyNotQuery
from repro.geometry.vectors import MAX_SIMPLEX_DISTANCE


def _scan_pool(samples: np.ndarray, ranks: np.ndarray,
               why_not: np.ndarray, k: int, k_max: int,
               config: PenaltyConfig, *, dists: np.ndarray | None = None):
    """Best candidate a sample pool admits, over all rank thresholds.

    Sorts the pool by rank (stable) and computes, for every prefix,
    the per-vector nearest sample (``np.minimum.accumulate``) and the
    Eq. (4) penalty with ``k' = max(k, rank)``.  Returns
    ``(penalty, weights, k_refined, thresholds_evaluated)`` — or
    ``None`` for an empty pool.  The per-term float assembly matches
    :func:`~repro.core.penalty.penalty_weights_k` exactly, so the
    independent audit reprices the winner to the same value.

    ``dists`` optionally supplies the precomputed ``(|pool|, m)``
    sample-to-why-not distance matrix (rows aligned with
    ``samples``); the anytime stepper caches these rows per chunk so
    re-scanning a growing pool does not recompute every norm.
    """
    if len(samples) == 0:
        return None
    if dists is None:
        dists = np.linalg.norm(
            samples[:, None, :] - why_not[None, :, :], axis=2)
    order = np.argsort(ranks, kind="stable")
    samples, ranks, dists = samples[order], ranks[order], dists[order]
    prefix = np.minimum.accumulate(dists, axis=0)
    m = len(why_not)
    dw_max = m * MAX_SIMPLEX_DISTANCE
    dk_max = max(0, int(k_max) - int(k))
    dk = np.maximum(ranks - k, 0)
    term_k = (dk / dk_max) if dk_max > 0 else np.zeros(len(ranks))
    penalties = (config.alpha * term_k
                 + config.beta * (prefix.sum(axis=1) / dw_max))
    s = int(np.argmin(penalties))
    choice = np.argmin(dists[:s + 1], axis=0)
    weights = samples[choice].copy()
    return (float(penalties[s]), weights, max(int(k), int(ranks[s])),
            len(penalties))


class MWKStepper:
    """Resumable Algorithm 2: ``refine(chunk)`` examines ``chunk``
    more weight samples and returns the current-best
    :class:`~repro.core.types.MWKResult`.

    The contract every anytime stepper honors:

    * ``refine`` never increases the returned penalty;
    * the result after refining to ``N`` total samples equals the
      one-shot answer at ``sample_size=N`` and the same seed;
    * ``converged`` turns True when further refinement provably
      cannot improve the answer (no incomparable points, ``k'_max <=
      k``, or a zero penalty).

    ``samples_examined`` counts stream samples drawn — the budget
    unit of :class:`~repro.core.protocol.Budget.sample_budget`.
    """

    #: One weight sample is cheap (a row of a vectorized kernel), so
    #: the executor's deadline probe and interleaved rounds work in
    #: sizeable chunks.
    min_chunk = 64
    round_chunk = 256

    def __init__(self, *, points: np.ndarray, inc: IncomparableResult,
                 q: np.ndarray, why_not: np.ndarray, k: int,
                 rng: np.random.Generator | None = None,
                 config: PenaltyConfig = DEFAULT_PENALTY,
                 include_originals: bool = True,
                 sample_target: int = 800):
        rng = rng if rng is not None else np.random.default_rng(0)
        # Canonical (id-sorted) incomparable order: a FindIncom
        # partition's traversal order depends on how the R-tree was
        # built or patched, and the hyperplane sampler indexes into
        # this array — sorting makes the answer a function of the
        # incomparable *set*, so inherited (copy-on-write) partitions
        # answer identically to a scratch rebuild.
        self._inc_points = points[np.sort(
            np.asarray(inc.incomparable_ids))]
        self._dom_points = points[inc.dominating_ids]
        self._q = np.asarray(q, dtype=np.float64)
        self._why_not = np.atleast_2d(np.asarray(why_not,
                                                 dtype=np.float64))
        self._k = int(k)
        self._config = config
        self._include_originals = include_originals
        self.sample_target = int(sample_target)
        self.samples_examined = 0
        self.rounds = 0

        m = len(self._why_not)
        self._orig_ranks = ranks_under_weights(
            self._why_not, self._inc_points, self._dom_points, self._q)
        self._k_max = (int(self._orig_ranks.max()) if m else self._k)

        self._pool_samples: list[np.ndarray] = []
        self._pool_ranks: list[np.ndarray] = []
        # Distance rows cached per chunk: a sample's distances to the
        # why-not vectors never change, so re-scanning the growing
        # pool must not recompute every norm each round.
        self._pool_dists: list[np.ndarray] = []
        self._orig_dists = np.linalg.norm(
            self._why_not[:, None, :] - self._why_not[None, :, :],
            axis=2)
        self._candidates = 1
        if self._k_max <= self._k:
            # Every vector already admits q (possible for sampled
            # query points inside MQWK): nothing to modify.
            self._best = (0.0, self._why_not.copy(), self._k)
            self._exhausted = True
        else:
            # Seed: the pure-k refinement (Wm, k'_max); Lemma 4
            # guarantees it is always valid.  Its Eq. (4) penalty is
            # exactly alpha (full Δk, zero ΔWm).
            self._best = (config.alpha, self._why_not.copy(),
                          self._k_max)
            self._exhausted = inc.n_incomparable == 0
        self._stream = (None if self._exhausted else
                        WeightSampleStream(self._inc_points, self._q,
                                           rng,
                                           anchors=self._why_not))

    @property
    def converged(self) -> bool:
        return self._exhausted or self._best[0] == 0.0

    def refine(self, chunk: int) -> MWKResult:
        """Examine up to ``chunk`` more samples; return current best."""
        self.rounds += 1
        chunk = int(chunk)
        if self._stream is not None and chunk > 0:
            draw = self._stream.take(chunk)
            ranks = ranks_under_weights(draw, self._inc_points,
                                        self._dom_points, self._q)
            self.samples_examined += len(draw)
            # Prune beyond k'_max (Algorithm 2 line 13): the pure-k
            # seed always beats those candidates.
            keep = ranks <= self._k_max
            if keep.any():
                kept = draw[keep]
                self._pool_samples.append(kept)
                self._pool_ranks.append(ranks[keep])
                self._pool_dists.append(np.linalg.norm(
                    kept[:, None, :] - self._why_not[None, :, :],
                    axis=2))
            self._rescan()
        return self.result()

    def _rescan(self) -> None:
        if self._pool_samples:
            samples = np.concatenate(self._pool_samples, axis=0)
            ranks = np.concatenate(self._pool_ranks)
            dists = np.concatenate(self._pool_dists, axis=0)
        else:
            m = len(self._why_not)
            samples = np.empty((0, self._q.shape[0]))
            ranks = np.empty(0, dtype=np.int64)
            dists = np.empty((0, m))
        if self._include_originals:
            samples, ranks = inject_why_not_vectors(
                samples, ranks, self._why_not, self._orig_ranks)
            dists = np.concatenate([dists, self._orig_dists], axis=0)
        scanned = _scan_pool(samples, ranks, self._why_not, self._k,
                             self._k_max, self._config, dists=dists)
        if scanned is None:
            return
        penalty, weights, k_refined, evaluated = scanned
        self._candidates = evaluated + 1
        # Adopt on <= so the carried best after the final round is
        # exactly the full-pool scan winner (one-shot equality); the
        # scan is pool-monotone, so penalties never increase.
        if penalty <= self._best[0]:
            self._best = (penalty, weights, k_refined)

    def result(self) -> MWKResult:
        """The current-best result, without further refinement."""
        penalty, weights, k_refined = self._best
        return MWKResult(
            weights_refined=weights.copy(),
            k_refined=int(k_refined),
            penalty=float(penalty),
            delta_k=max(0, int(k_refined) - self._k),
            delta_w=delta_weights(self._why_not, weights),
            k_max=self._k_max,
            samples_examined=self.samples_examined,
            candidates_evaluated=self._candidates,
        )


def make_stepper(query: WhyNotQuery, *,
                 rng: np.random.Generator | None = None,
                 config: PenaltyConfig = DEFAULT_PENALTY,
                 include_originals: bool = True,
                 incomparable: IncomparableResult | None = None,
                 context=None,
                 sample_target: int = 800) -> MWKStepper:
    """Build an :class:`MWKStepper` for a validated why-not question,
    resolving the ``FindIncom`` partition exactly like
    :func:`modify_weights_and_k` (explicit > context cache > fresh
    R-tree traversal)."""
    if incomparable is not None:
        inc = incomparable
    elif context is not None:
        inc = context.partition(query.q)
    else:
        inc = find_incomparable(query.rtree, query.q)
    return MWKStepper(points=query.points, inc=inc, q=query.q,
                      why_not=query.why_not, k=query.k, rng=rng,
                      config=config,
                      include_originals=include_originals,
                      sample_target=sample_target)


def modify_weights_and_k(query: WhyNotQuery, *, sample_size: int = 800,
                         rng: np.random.Generator | None = None,
                         config: PenaltyConfig = DEFAULT_PENALTY,
                         include_originals: bool = True,
                         incomparable: IncomparableResult | None = None,
                         context=None) -> MWKResult:
    """Run Algorithm 2 on a validated why-not question.

    The one-shot form: an :class:`MWKStepper` refined for a single
    ``sample_size``-sample round, so chunked anytime refinement and
    this function agree exactly at equal total samples and seed.

    Parameters
    ----------
    query:
        The why-not question (dataset, ``q``, ``k``, ``Wm``).
    sample_size:
        ``|S|`` — number of weighting-vector samples.
    rng:
        Random generator; defaults to a fixed seed for reproducibility.
    config:
        Penalty tolerances (α, β).
    include_originals:
        Allow mixed candidates (see module docstring).
    incomparable:
        Pre-computed ``FindIncom`` result (the MQWK reuse path).
    context:
        Optional :class:`~repro.engine.context.DatasetContext`; when
        given (and ``incomparable`` is not), the ``FindIncom``
        partition is fetched from the context's per-``q`` cache, so
        repeated questions about one product traverse the R-tree once.
    """
    stepper = make_stepper(query, rng=rng, config=config,
                           include_originals=include_originals,
                           incomparable=incomparable, context=context,
                           sample_target=sample_size)
    return stepper.refine(sample_size)


def _mwk_core(*, points: np.ndarray, inc: IncomparableResult,
              q: np.ndarray, why_not: np.ndarray, k: int,
              sample_size: int, rng: np.random.Generator,
              config: PenaltyConfig,
              include_originals: bool) -> MWKResult:
    """Algorithm 2 body, reusable with a cached FindIncom partition."""
    stepper = MWKStepper(points=points, inc=inc, q=q, why_not=why_not,
                         k=k, rng=rng, config=config,
                         include_originals=include_originals,
                         sample_target=sample_size)
    return stepper.refine(sample_size)
