"""MWK — Modifying the why-not vectors and k (Algorithm 2).

The exact problem (find ``(Wm', k')`` minimizing Eq. 4 subject to
``rank(q, w') <= k'`` for every refined vector) would require solving
``|Wm| · 2^|I|`` quadratic programs in the worst case, so the paper
trades exactness for a sampling scheme:

1. ``FindIncom``: partition the dataset into points dominating ``q``
   (``D``), incomparable with it (``I``), and dominated (irrelevant).
2. Sample ``|S|`` weighting vectors from the hyperplanes spanned by
   ``q`` and the points of ``I`` (the only places optimal refinements
   can live, He & Lo [14]).
3. Compute the rank of ``q`` under every sample *from D and I alone*
   (dominating points always precede ``q``, dominated ones never do).
4. Sort samples by rank; scan them once (Lemma 6), maintaining a
   working candidate ``CW`` that greedily adopts any sample strictly
   closer to some original vector, and evaluating the blended penalty
   of each improved candidate with ``k' = max(k, rank)``.

Candidates with rank beyond ``k'_max = max_i rank(q, w_i)`` are
discarded: the pure-``k`` refinement ``(Wm, k'_max)`` — which the scan
seeds its minimum with — always beats them (Lemma 4/5).

Deviation from the pseudo-code (documented in DESIGN.md): the original
why-not vectors are injected into the sample pool with their true ranks
and zero distance (``include_originals=True``).  This lets the scan form
*mixed* candidates (modify some vectors, keep others and raise ``k``
slightly), which the paper's scan cannot represent; it never increases
the returned penalty.  Disable for strict paper fidelity.
"""

from __future__ import annotations

import numpy as np

from repro.core.incomparable import IncomparableResult, find_incomparable
from repro.core.penalty import (
    DEFAULT_PENALTY,
    PenaltyConfig,
    delta_weights,
    penalty_weights_k,
)
from repro.core.sampling import (
    ranks_under_weights,
    sample_weights_on_hyperplanes,
)
from repro.core.types import MWKResult, WhyNotQuery


def modify_weights_and_k(query: WhyNotQuery, *, sample_size: int = 800,
                         rng: np.random.Generator | None = None,
                         config: PenaltyConfig = DEFAULT_PENALTY,
                         include_originals: bool = True,
                         incomparable: IncomparableResult | None = None,
                         context=None) -> MWKResult:
    """Run Algorithm 2 on a validated why-not question.

    Parameters
    ----------
    query:
        The why-not question (dataset, ``q``, ``k``, ``Wm``).
    sample_size:
        ``|S|`` — number of weighting-vector samples.
    rng:
        Random generator; defaults to a fixed seed for reproducibility.
    config:
        Penalty tolerances (α, β).
    include_originals:
        Allow mixed candidates (see module docstring).
    incomparable:
        Pre-computed ``FindIncom`` result (the MQWK reuse path).
    context:
        Optional :class:`~repro.engine.context.DatasetContext`; when
        given (and ``incomparable`` is not), the ``FindIncom``
        partition is fetched from the context's per-``q`` cache, so
        repeated questions about one product traverse the R-tree once.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    if incomparable is not None:
        inc = incomparable
    elif context is not None:
        inc = context.partition(query.q)
    else:
        inc = find_incomparable(query.rtree, query.q)
    return _mwk_core(
        points=query.points,
        inc=inc,
        q=query.q,
        why_not=query.why_not,
        k=query.k,
        sample_size=sample_size,
        rng=rng,
        config=config,
        include_originals=include_originals,
    )


def _mwk_core(*, points: np.ndarray, inc: IncomparableResult,
              q: np.ndarray, why_not: np.ndarray, k: int,
              sample_size: int, rng: np.random.Generator,
              config: PenaltyConfig,
              include_originals: bool) -> MWKResult:
    """Algorithm 2 body, reusable with a cached FindIncom partition."""
    inc_points = points[inc.incomparable_ids]
    dom_points = points[inc.dominating_ids]
    m = len(why_not)

    # Ranks of q under the original why-not vectors; Lemma 4.
    orig_ranks = ranks_under_weights(why_not, inc_points, dom_points, q)
    k_max = int(orig_ranks.max()) if m else k

    if k_max <= k:
        # Every vector already admits q (possible for sampled query
        # points inside MQWK): nothing to modify.
        return MWKResult(
            weights_refined=why_not.copy(), k_refined=k, penalty=0.0,
            delta_k=0, delta_w=0.0, k_max=k_max, samples_examined=0,
            candidates_evaluated=1)

    # Seed: the pure-k refinement (Wm, k'_max).  Lemma 4 guarantees it
    # is always a valid candidate.
    best_weights = why_not.copy()
    best_k = k_max
    best_penalty = penalty_weights_k(why_not, why_not, k, k_max, k_max,
                                     config)
    candidates = 1

    if inc.n_incomparable == 0:
        # No incomparable points: every weighting vector ranks q at
        # |D| + 1, so weight changes cannot help.  k'_max is the answer.
        return MWKResult(
            weights_refined=best_weights, k_refined=best_k,
            penalty=best_penalty, delta_k=k_max - k, delta_w=0.0,
            k_max=k_max, samples_examined=0, candidates_evaluated=1)

    samples = sample_weights_on_hyperplanes(inc_points, q, sample_size,
                                            rng, anchors=why_not)
    sample_ranks = ranks_under_weights(samples, inc_points, dom_points,
                                       q)

    if include_originals:
        samples = np.vstack([samples, why_not])
        sample_ranks = np.concatenate([sample_ranks, orig_ranks])

    # Prune beyond k'_max (Algorithm 2 line 13) and sort by rank.
    keep = sample_ranks <= k_max
    samples, sample_ranks = samples[keep], sample_ranks[keep]
    order = np.argsort(sample_ranks, kind="stable")
    samples, sample_ranks = samples[order], sample_ranks[order]
    examined = len(samples)

    if examined:
        # Distance of every sample to every original vector: (|S|, m).
        dists = np.linalg.norm(
            samples[:, None, :] - why_not[None, :, :], axis=2)

        # Working candidate: every original mapped to the first sample.
        cw = np.repeat(samples[:1], m, axis=0)
        cw_dist = dists[0].copy()
        cand_penalty = _candidate_penalty(
            why_not, cw, k, int(sample_ranks[0]), k_max, config)
        candidates += 1
        if cand_penalty < best_penalty:
            best_penalty = cand_penalty
            best_weights, best_k = cw.copy(), max(k, int(sample_ranks[0]))

        for s in range(1, examined):
            improved = dists[s] < cw_dist - 1e-15
            if not improved.any():
                continue
            cw[improved] = samples[s]
            cw_dist[improved] = dists[s][improved]
            rank_s = int(sample_ranks[s])
            cand_penalty = _candidate_penalty(
                why_not, cw, k, rank_s, k_max, config)
            candidates += 1
            if cand_penalty < best_penalty:
                best_penalty = cand_penalty
                best_weights, best_k = cw.copy(), max(k, rank_s)

    dw = delta_weights(why_not, best_weights)
    return MWKResult(
        weights_refined=best_weights,
        k_refined=int(best_k),
        penalty=float(best_penalty),
        delta_k=max(0, int(best_k) - k),
        delta_w=dw,
        k_max=k_max,
        samples_examined=examined,
        candidates_evaluated=candidates,
    )


def _candidate_penalty(why_not, cw, k, rank_s, k_max, config) -> float:
    """Eq. (4) for a scan candidate with ``k' = max(k, rank_s)``.

    When a candidate keeps some original vectors (mixed candidates via
    ``include_originals``), their ranks may exceed ``rank_s``; the true
    required ``k'`` is the max over the candidate's per-vector ranks.
    Using ``rank_s`` here stays faithful to the paper's scan, and is
    *valid* because originals enter the pool with their own (higher)
    ranks: a mixed candidate is only evaluated once the scan reaches the
    original's rank.
    """
    return penalty_weights_k(why_not, cw, k, max(k, rank_s), k_max,
                             config)
