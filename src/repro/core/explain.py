"""Why-not explanations — aspect (i) of Definitions 4-5.

A why-not weighting vector ``w`` misses the reverse top-k result
because more than ``k - 1`` points score strictly below ``q`` under
``w``.  Those points *are* the explanation: they are exactly what keeps
``q`` out of ``TOPk(w)``.  This module streams them with a progressive
ranked search (BRS when an R-tree is available), stopping at the first
point scoring no better than ``q`` — the paper's "proceed until the
query point q is contained in the result".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vectors import score
from repro.topk.progressive import progressive_topk


@dataclass(frozen=True)
class WhyNotExplanation:
    """Explanation for one why-not weighting vector.

    Attributes
    ----------
    weight:
        The why-not vector.
    culprit_ids:
        Ids of the points outranking ``q`` under the vector, in rank
        order.  May be truncated to ``max_culprits``; the *true* count
        is always ``rank - 1``.
    culprit_scores:
        Their scores.
    q_score:
        ``f(w, q)``.
    rank:
        The actual rank of ``q`` under the vector.
    """

    weight: np.ndarray
    culprit_ids: np.ndarray
    culprit_scores: np.ndarray
    q_score: float
    rank: int

    @property
    def rank_of_q(self) -> int:
        return self.rank

    @property
    def truncated(self) -> bool:
        """True when ``culprit_ids`` holds fewer than ``rank - 1``
        points (a ``max_culprits`` cap was applied)."""
        return len(self.culprit_ids) < self.rank - 1

    def describe(self, k: int) -> str:
        """One-line human-readable explanation."""
        shown = (f" (showing {len(self.culprit_ids)})"
                 if self.truncated else "")
        return (
            f"q ranks {self.rank} under w={np.round(self.weight, 3)}"
            f" — {self.rank - 1} point(s) score below"
            f" f(w, q)={self.q_score:.4f}{shown}, so q misses the"
            f" top-{k}."
        )


def explain_why_not(source, q, why_not, k: int,
                    *, max_culprits: int | None = None,
                    ) -> list[WhyNotExplanation]:
    """Explain why each vector of ``why_not`` excludes ``q``.

    Parameters
    ----------
    source:
        :class:`~repro.index.rtree.RTree` or raw point array.
    q:
        Query point.
    why_not:
        ``(m, d)`` array of missing weighting vectors.
    k:
        The original reverse top-k parameter (used in descriptions).
    max_culprits:
        Optional cap on the number of culprits retrieved per vector
        (rank can be huge; callers often only display a handful).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    qv = np.asarray(q, dtype=np.float64)
    out: list[WhyNotExplanation] = []
    for w in np.atleast_2d(np.asarray(why_not, dtype=np.float64)):
        target = score(w, qv)
        ids: list[int] = []
        scores: list[float] = []
        beaten_by = 0
        # Stream the full prefix to learn the true rank; the cap only
        # bounds what is *stored*.
        for pid, sc in progressive_topk(source, w, until_score=target):
            beaten_by += 1
            if max_culprits is None or len(ids) < max_culprits:
                ids.append(pid)
                scores.append(sc)
        out.append(WhyNotExplanation(
            weight=w.copy(),
            culprit_ids=np.asarray(ids, dtype=np.int64),
            culprit_scores=np.asarray(scores, dtype=np.float64),
            q_score=float(target),
            rank=beaten_by + 1,
        ))
    return out
