"""Safe regions (Definition 7, Lemmas 1-3).

The *safe region* ``SR(q)`` of a query point is the set of locations
``q'`` such that moving ``q`` there puts it in the top-k of **every**
why-not weighting vector.  By Lemma 3 it is the intersection of the
half-spaces ``HS(w_i, p_i)`` where ``p_i`` is the k-th ranked point
under the why-not vector ``w_i``, additionally boxed to ``[0, q]``
(decreasing coordinates never hurts under a monotone scoring function).

This module materializes the region in two forms:

* an algebraic :class:`~repro.geometry.hyperplane.HalfspaceSystem`
  consumed by the QP step of MQP (any dimension), and
* an exact :class:`~repro.geometry.convex2d.Polygon2D` in 2-D, used by
  tests as an independent oracle and by examples for visualisation.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels import kth_scores_batch
from repro.geometry.convex2d import Polygon2D, halfplane_intersection
from repro.geometry.hyperplane import HalfspaceSystem
from repro.index.rtree import RTree
from repro.topk.brs import BRSEngine


def kth_points_for(source, why_not, k: int) -> tuple[np.ndarray,
                                                     np.ndarray]:
    """The top-k-th point (id and score) under each why-not vector.

    This is phase 1 of Algorithm 1 (lines 1-12): a progressive ranked
    retrieval per why-not vector (BRS on an R-tree source), or one
    batched k-th-point kernel call
    (:func:`repro.engine.kernels.kth_scores_batch`) on a raw array.
    """
    wts = np.atleast_2d(np.asarray(why_not, dtype=np.float64))
    if isinstance(source, RTree):
        ids = np.empty(len(wts), dtype=np.int64)
        scores = np.empty(len(wts), dtype=np.float64)
        engine = BRSEngine(source)
        for i, w in enumerate(wts):
            pid, sc = engine.kth_point(w, k)
            ids[i], scores[i] = pid, sc
        return ids, scores
    return kth_scores_batch(source, wts, k)


def safe_region_system(source, q, why_not, k: int) -> HalfspaceSystem:
    """The safe region as ``A x <= b`` with box ``[0, q]`` (Lemma 3)."""
    qv = np.asarray(q, dtype=np.float64)
    wts = np.atleast_2d(np.asarray(why_not, dtype=np.float64))
    _, scores = kth_points_for(source, wts, k)
    return HalfspaceSystem.from_constraints(
        wts, scores, lower=np.zeros_like(qv), upper=qv)


def safe_region_polygon(source, q, why_not, k: int) -> Polygon2D:
    """Exact 2-D safe region polygon (Figure 5(b) of the paper)."""
    qv = np.asarray(q, dtype=np.float64)
    if qv.shape[0] != 2:
        raise ValueError("exact polygons require 2-D data")
    wts = np.atleast_2d(np.asarray(why_not, dtype=np.float64))
    _, scores = kth_points_for(source, wts, k)
    return halfplane_intersection(wts, scores,
                                  lower=(0.0, 0.0),
                                  upper=(float(qv[0]), float(qv[1])))


def is_safe(source, q_candidate, why_not, k: int) -> bool:
    """Direct check of Definition 7: does ``q_candidate`` make every
    why-not vector's top-k?  (Rank test, no geometry.)"""
    from repro.topk.progressive import rank_of_point

    wts = np.atleast_2d(np.asarray(why_not, dtype=np.float64))
    return all(rank_of_point(source, w, q_candidate) <= k for w in wts)
