"""Samplers used by MWK and MQWK (Section 4.3-4.4).

Weight sampling
---------------
For a fixed target rank, the optimally-modified weighting vector lies on
one of the hyperplanes ``{w : w · (p - q) = 0}`` spanned by the query
point and a point ``p`` incomparable with it (He & Lo [14]).  MWK
therefore samples from the union of these hyperplanes restricted to the
simplex.  Each draw works as follows:

1. pick an incomparable point ``p`` uniformly at random;
2. draw two uniform simplex vectors ``u, v`` (flat Dirichlet);
3. if ``g(u) = u·(p-q)`` and ``g(v)`` have opposite signs, the convex
   combination with ``g = 0`` lies on the hyperplane *and* on the
   simplex (the simplex is convex); otherwise redraw.

Because ``p`` is incomparable with ``q``, ``p - q`` has both positive
and negative components, so ``g`` attains both signs over the simplex
and the rejection loop terminates quickly (the two signs each have
non-vanishing probability).

Query-point sampling
--------------------
MQWK samples candidate query points uniformly from the axis-aligned box
``[q_min, q]`` where ``q_min`` is the MQP optimum — points outside this
box are provably dominated as candidates (Section 4.4).

Chunk-invariant streams
-----------------------
The anytime steppers (:class:`~repro.core.mwk.MWKStepper`,
:class:`~repro.core.mqwk.MQWKStepper`) consume samples incrementally.
:class:`WeightSampleStream` / :class:`QueryPointSampleStream` make the
sample sequence a *deterministic infinite stream*: sample ``i`` is
drawn from a generator seeded by ``(entropy, i // block)`` — a
function of the stream's entropy and the sample's position only, never
of how the caller chunked its reads.  ``take(250)`` followed by
``take(550)`` therefore yields exactly the 800 samples a single
``take(800)`` would, which is what makes a chunked anytime answer
*equal* (not just statistically similar) to the one-shot answer at the
same total sample count and seed.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels import CHUNK_FLOATS, ranks_batch

_MAX_ROUNDS = 200


def sample_simplex(rng: np.random.Generator, size: int,
                   dim: int) -> np.ndarray:
    """Uniform samples from the standard (dim-1)-simplex."""
    return rng.dirichlet(np.ones(dim), size=size)


def sample_weights_on_hyperplanes(incomparable_points, q, size: int,
                                  rng: np.random.Generator, *,
                                  anchors=None,
                                  anchor_fraction: float = 0.5,
                                  ) -> np.ndarray:
    """Draw ``size`` weighting vectors from the MWK sample space.

    Parameters
    ----------
    incomparable_points:
        ``(|I|, d)`` array of points incomparable with ``q``.
    q:
        The query point.
    size:
        Number of samples requested.
    rng:
        NumPy random generator (determinism!).
    anchors:
        Optional ``(m, d)`` array of weighting vectors (MWK passes the
        why-not set).  A fraction of the bracketing segments is
        anchored at a random anchor instead of a random simplex point,
        and the hyperplane for such a draw is chosen among the
        anchor's *culprits* — the incomparable points currently
        beating ``q`` under that anchor.  Walking from the anchor
        until a culprit's plane is crossed neutralizes exactly the
        points that keep ``q`` out of the top-k, so crossings
        concentrate near the vectors the penalty is measured against —
        the "high quality samples" the paper's Section 4.3 asks for.
        The remaining fraction stays uniform for exploration.
    anchor_fraction:
        Share of anchored draws when ``anchors`` is given.

    Returns
    -------
    numpy.ndarray
        ``(size, d)`` array of simplex vectors, each on the hyperplane
        of some incomparable point.

    Raises
    ------
    ValueError
        If there are no incomparable points (the sample space is empty
        — then ``q``'s rank is fixed at ``|D| + 1`` for every ``w`` and
        no weight modification can help).
    """
    inc = np.atleast_2d(np.asarray(incomparable_points, dtype=np.float64))
    if inc.shape[0] == 0:
        raise ValueError("empty sample space: no incomparable points")
    qv = np.asarray(q, dtype=np.float64)
    d = qv.shape[0]
    diffs = inc - qv          # rows: p - q
    anchor_arr = (None if anchors is None
                  else np.atleast_2d(np.asarray(anchors,
                                                dtype=np.float64)))
    culprits: list[np.ndarray] = []
    if anchor_arr is not None:
        # Culprit planes per anchor: incomparable points scoring below
        # q under that anchor (g = w . (p - q) < 0).
        g_anchor = diffs @ anchor_arr.T            # (|I|, m)
        for j in range(anchor_arr.shape[0]):
            idx = np.nonzero(g_anchor[:, j] < 0)[0]
            culprits.append(idx if len(idx) else np.arange(len(diffs)))
    out = np.empty((size, d))
    filled = 0
    for _ in range(_MAX_ROUNDS):
        need = size - filled
        if need <= 0:
            break
        batch = max(need * 2, 64)
        plane_idx = rng.integers(0, len(diffs), size=batch)
        u = sample_simplex(rng, batch, d)
        v = sample_simplex(rng, batch, d)
        if anchor_arr is not None and anchor_fraction > 0:
            anchored = np.nonzero(
                rng.random(batch) < anchor_fraction)[0]
            which = rng.integers(0, len(anchor_arr),
                                 size=len(anchored))
            u[anchored] = anchor_arr[which]
            for pos, j in zip(anchored, which):
                pool = culprits[j]
                plane_idx[pos] = pool[rng.integers(0, len(pool))]
        plane = diffs[plane_idx]
        gu = np.einsum("ij,ij->i", u, plane)
        gv = np.einsum("ij,ij->i", v, plane)
        ok = gu * gv < 0
        if not ok.any():
            continue
        # Aim a hair to the *positive* side of the hyperplane
        # (g = w . (p - q) = +tau > 0, i.e. p scores slightly worse
        # than q) instead of exactly 0: ties are resolved in q's
        # favour throughout the library, and an exactly-on-plane
        # sample would let float noise flip the tie against q when
        # ranks are recomputed elsewhere.
        tau = 1e-9 * (np.abs(gu[ok]) + np.abs(gv[ok]))
        t = (gu[ok] - tau) / (gu[ok] - gv[ok])
        w = (1.0 - t[:, None]) * u[ok] + t[:, None] * v[ok]
        # Numerical hygiene: clip and renormalize (both preserve the
        # sign of g up to a positive scale for non-negative w).
        w = np.clip(w, 0.0, None)
        w /= w.sum(axis=1, keepdims=True)
        g_final = np.einsum("ij,ij->i", w, plane[ok])
        w = w[g_final >= 0.0]
        take = min(need, len(w))
        out[filled:filled + take] = w[:take]
        filled += take
    if filled < size:
        raise RuntimeError("hyperplane sampler failed to converge; "
                           "sample space may be numerically degenerate")
    return out


#: Samples per internal stream block.  Each block is drawn from its
#: own position-derived generator, so any chunking of reads sees the
#: same sample sequence (see the module docstring).
STREAM_BLOCK = 128

#: Upper bound for stream entropy draws (``Generator.integers`` high).
_ENTROPY_HIGH = 2**63 - 1


def stream_entropy(rng: np.random.Generator) -> int:
    """One entropy draw that seeds a whole deterministic stream.

    The single point where an anytime stepper consumes its caller's
    generator: everything after is derived from ``(entropy, position)``
    pairs, never from further generator state — the property that
    makes refinement chunk-invariant.
    """
    return int(rng.integers(0, _ENTROPY_HIGH))


class _BlockedStream:
    """Deterministic infinite sample stream, read in arbitrary chunks.

    Subclasses implement ``_draw_block(rng) -> (block, d) array``;
    block ``b`` always uses ``default_rng((entropy, b))``, so the
    concatenation of all reads is a prefix of one fixed sequence.
    """

    def __init__(self, entropy: int, *, block: int = STREAM_BLOCK):
        self._entropy = int(entropy)
        self._block = int(block)
        self._next_block = 0
        self._pending: np.ndarray | None = None   # unread block tail

    def _draw_block(self, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` samples of the stream."""
        n = int(n)
        parts: list[np.ndarray] = []
        got = 0
        if self._pending is not None and len(self._pending):
            head = self._pending[:n]
            self._pending = self._pending[len(head):]
            parts.append(head)
            got += len(head)
        while got < n:
            rng = np.random.default_rng((self._entropy,
                                         self._next_block))
            self._next_block += 1
            block = self._draw_block(rng)
            head = block[:n - got]
            self._pending = block[len(head):]
            parts.append(head)
            got += len(head)
        if not parts:
            return np.empty((0, self._dim))
        return np.concatenate(parts, axis=0)


class WeightSampleStream(_BlockedStream):
    """Chunk-invariant stream of MWK weight samples.

    Wraps :func:`sample_weights_on_hyperplanes` for one fixed
    ``(incomparable set, q, anchors)`` sample space; raises the same
    ``ValueError`` for an empty space.
    """

    def __init__(self, incomparable_points, q,
                 rng: np.random.Generator, *, anchors=None,
                 block: int = STREAM_BLOCK):
        super().__init__(stream_entropy(rng), block=block)
        self._inc = np.atleast_2d(np.asarray(incomparable_points,
                                             dtype=np.float64))
        if self._inc.shape[0] == 0:
            raise ValueError("empty sample space: no incomparable "
                             "points")
        self._q = np.asarray(q, dtype=np.float64)
        self._anchors = anchors
        self._dim = self._q.shape[0]

    def _draw_block(self, rng: np.random.Generator) -> np.ndarray:
        return sample_weights_on_hyperplanes(
            self._inc, self._q, self._block, rng,
            anchors=self._anchors)


class QueryPointSampleStream(_BlockedStream):
    """Chunk-invariant stream of MQWK query-point candidates."""

    def __init__(self, q_min, q, rng: np.random.Generator, *,
                 block: int = STREAM_BLOCK):
        super().__init__(stream_entropy(rng), block=block)
        self._lo = np.asarray(q_min, dtype=np.float64)
        self._hi = np.asarray(q, dtype=np.float64)
        self._dim = self._hi.shape[0]

    def _draw_block(self, rng: np.random.Generator) -> np.ndarray:
        return sample_query_points(self._lo, self._hi, self._block,
                                   rng)


def inject_why_not_vectors(samples, sample_ranks, why_not,
                           why_not_ranks):
    """Append the original why-not vectors to a sample pool.

    The shared MWK/MQWK "mixed candidates" injection (previously a
    ``vstack``/``concatenate`` pair duplicated at every scan site):
    the originals enter the pool with their true ranks and zero
    distance to themselves, which lets a scan keep some vectors while
    modifying others.  Returns the combined ``(samples, ranks)``; the
    originals come last, so prefix order — and therefore a stable
    rank sort — is unchanged for the sampled part.
    """
    why_not = np.atleast_2d(np.asarray(why_not, dtype=np.float64))
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        samples = samples.reshape(0, why_not.shape[1])
    combined = np.vstack([samples, why_not])
    ranks = np.concatenate([np.asarray(sample_ranks),
                            np.asarray(why_not_ranks)])
    return combined, ranks


def sample_query_points(q_min, q, size: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Uniform samples from the box ``[q_min, q]`` (MQWK sample space)."""
    lo = np.asarray(q_min, dtype=np.float64)
    hi = np.asarray(q, dtype=np.float64)
    if lo.shape != hi.shape:
        raise ValueError("q_min and q must share a shape")
    if np.any(lo > hi + 1e-12):
        raise ValueError("q_min must be component-wise <= q")
    u = rng.random((size, lo.shape[0]))
    return lo + u * (hi - lo)


def ranks_under_weights(weights, incomparable_points, dominating, q, *,
                        chunk_floats: int = CHUNK_FLOATS) -> np.ndarray:
    """Rank of ``q`` under each weighting vector, from a FindIncom
    partition.

    ``rank(q, w) = 1 + beats(D) + beats(I)`` where ``beats(X)`` counts
    the points of ``X`` scoring below ``f(w, q) - RANK_EPS`` —
    dominated points never beat ``q``, so only the partition's D and I
    sets need scoring (this is why MWK computes ranks "based on D and
    I").  Fully vectorized and chunked.

    Parameters
    ----------
    dominating:
        Either the ``(|D|, d)`` array of dominating points — scored
        with the same tie tolerance as everything else, the exact
        behaviour — or an ``int`` count to trust as-is (cheaper;
        identical unless a dominating point's score gap to ``q`` is
        below ``RANK_EPS``, which real-valued data essentially never
        produces).

    The tie tolerance (``RANK_EPS``) matches
    :func:`repro.topk.scan.rank_of_scan` exactly, so ranks computed
    here agree with any later re-validation of a refined answer.  The
    array work is one call into the shared kernel module
    (:func:`repro.engine.kernels.ranks_batch`).
    """
    return ranks_batch(weights, incomparable_points, q,
                       dominating=dominating,
                       chunk_floats=chunk_floats)
