"""Samplers used by MWK and MQWK (Section 4.3-4.4).

Weight sampling
---------------
For a fixed target rank, the optimally-modified weighting vector lies on
one of the hyperplanes ``{w : w · (p - q) = 0}`` spanned by the query
point and a point ``p`` incomparable with it (He & Lo [14]).  MWK
therefore samples from the union of these hyperplanes restricted to the
simplex.  Each draw works as follows:

1. pick an incomparable point ``p`` uniformly at random;
2. draw two uniform simplex vectors ``u, v`` (flat Dirichlet);
3. if ``g(u) = u·(p-q)`` and ``g(v)`` have opposite signs, the convex
   combination with ``g = 0`` lies on the hyperplane *and* on the
   simplex (the simplex is convex); otherwise redraw.

Because ``p`` is incomparable with ``q``, ``p - q`` has both positive
and negative components, so ``g`` attains both signs over the simplex
and the rejection loop terminates quickly (the two signs each have
non-vanishing probability).

Query-point sampling
--------------------
MQWK samples candidate query points uniformly from the axis-aligned box
``[q_min, q]`` where ``q_min`` is the MQP optimum — points outside this
box are provably dominated as candidates (Section 4.4).
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels import CHUNK_FLOATS, ranks_batch

_MAX_ROUNDS = 200


def sample_simplex(rng: np.random.Generator, size: int,
                   dim: int) -> np.ndarray:
    """Uniform samples from the standard (dim-1)-simplex."""
    return rng.dirichlet(np.ones(dim), size=size)


def sample_weights_on_hyperplanes(incomparable_points, q, size: int,
                                  rng: np.random.Generator, *,
                                  anchors=None,
                                  anchor_fraction: float = 0.5,
                                  ) -> np.ndarray:
    """Draw ``size`` weighting vectors from the MWK sample space.

    Parameters
    ----------
    incomparable_points:
        ``(|I|, d)`` array of points incomparable with ``q``.
    q:
        The query point.
    size:
        Number of samples requested.
    rng:
        NumPy random generator (determinism!).
    anchors:
        Optional ``(m, d)`` array of weighting vectors (MWK passes the
        why-not set).  A fraction of the bracketing segments is
        anchored at a random anchor instead of a random simplex point,
        and the hyperplane for such a draw is chosen among the
        anchor's *culprits* — the incomparable points currently
        beating ``q`` under that anchor.  Walking from the anchor
        until a culprit's plane is crossed neutralizes exactly the
        points that keep ``q`` out of the top-k, so crossings
        concentrate near the vectors the penalty is measured against —
        the "high quality samples" the paper's Section 4.3 asks for.
        The remaining fraction stays uniform for exploration.
    anchor_fraction:
        Share of anchored draws when ``anchors`` is given.

    Returns
    -------
    numpy.ndarray
        ``(size, d)`` array of simplex vectors, each on the hyperplane
        of some incomparable point.

    Raises
    ------
    ValueError
        If there are no incomparable points (the sample space is empty
        — then ``q``'s rank is fixed at ``|D| + 1`` for every ``w`` and
        no weight modification can help).
    """
    inc = np.atleast_2d(np.asarray(incomparable_points, dtype=np.float64))
    if inc.shape[0] == 0:
        raise ValueError("empty sample space: no incomparable points")
    qv = np.asarray(q, dtype=np.float64)
    d = qv.shape[0]
    diffs = inc - qv          # rows: p - q
    anchor_arr = (None if anchors is None
                  else np.atleast_2d(np.asarray(anchors,
                                                dtype=np.float64)))
    culprits: list[np.ndarray] = []
    if anchor_arr is not None:
        # Culprit planes per anchor: incomparable points scoring below
        # q under that anchor (g = w . (p - q) < 0).
        g_anchor = diffs @ anchor_arr.T            # (|I|, m)
        for j in range(anchor_arr.shape[0]):
            idx = np.nonzero(g_anchor[:, j] < 0)[0]
            culprits.append(idx if len(idx) else np.arange(len(diffs)))
    out = np.empty((size, d))
    filled = 0
    for _ in range(_MAX_ROUNDS):
        need = size - filled
        if need <= 0:
            break
        batch = max(need * 2, 64)
        plane_idx = rng.integers(0, len(diffs), size=batch)
        u = sample_simplex(rng, batch, d)
        v = sample_simplex(rng, batch, d)
        if anchor_arr is not None and anchor_fraction > 0:
            anchored = np.nonzero(
                rng.random(batch) < anchor_fraction)[0]
            which = rng.integers(0, len(anchor_arr),
                                 size=len(anchored))
            u[anchored] = anchor_arr[which]
            for pos, j in zip(anchored, which):
                pool = culprits[j]
                plane_idx[pos] = pool[rng.integers(0, len(pool))]
        plane = diffs[plane_idx]
        gu = np.einsum("ij,ij->i", u, plane)
        gv = np.einsum("ij,ij->i", v, plane)
        ok = gu * gv < 0
        if not ok.any():
            continue
        # Aim a hair to the *positive* side of the hyperplane
        # (g = w . (p - q) = +tau > 0, i.e. p scores slightly worse
        # than q) instead of exactly 0: ties are resolved in q's
        # favour throughout the library, and an exactly-on-plane
        # sample would let float noise flip the tie against q when
        # ranks are recomputed elsewhere.
        tau = 1e-9 * (np.abs(gu[ok]) + np.abs(gv[ok]))
        t = (gu[ok] - tau) / (gu[ok] - gv[ok])
        w = (1.0 - t[:, None]) * u[ok] + t[:, None] * v[ok]
        # Numerical hygiene: clip and renormalize (both preserve the
        # sign of g up to a positive scale for non-negative w).
        w = np.clip(w, 0.0, None)
        w /= w.sum(axis=1, keepdims=True)
        g_final = np.einsum("ij,ij->i", w, plane[ok])
        w = w[g_final >= 0.0]
        take = min(need, len(w))
        out[filled:filled + take] = w[:take]
        filled += take
    if filled < size:
        raise RuntimeError("hyperplane sampler failed to converge; "
                           "sample space may be numerically degenerate")
    return out


def sample_query_points(q_min, q, size: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Uniform samples from the box ``[q_min, q]`` (MQWK sample space)."""
    lo = np.asarray(q_min, dtype=np.float64)
    hi = np.asarray(q, dtype=np.float64)
    if lo.shape != hi.shape:
        raise ValueError("q_min and q must share a shape")
    if np.any(lo > hi + 1e-12):
        raise ValueError("q_min must be component-wise <= q")
    u = rng.random((size, lo.shape[0]))
    return lo + u * (hi - lo)


def ranks_under_weights(weights, incomparable_points, dominating, q, *,
                        chunk_floats: int = CHUNK_FLOATS) -> np.ndarray:
    """Rank of ``q`` under each weighting vector, from a FindIncom
    partition.

    ``rank(q, w) = 1 + beats(D) + beats(I)`` where ``beats(X)`` counts
    the points of ``X`` scoring below ``f(w, q) - RANK_EPS`` —
    dominated points never beat ``q``, so only the partition's D and I
    sets need scoring (this is why MWK computes ranks "based on D and
    I").  Fully vectorized and chunked.

    Parameters
    ----------
    dominating:
        Either the ``(|D|, d)`` array of dominating points — scored
        with the same tie tolerance as everything else, the exact
        behaviour — or an ``int`` count to trust as-is (cheaper;
        identical unless a dominating point's score gap to ``q`` is
        below ``RANK_EPS``, which real-valued data essentially never
        produces).

    The tie tolerance (``RANK_EPS``) matches
    :func:`repro.topk.scan.rank_of_scan` exactly, so ranks computed
    here agree with any later re-validation of a refined answer.  The
    array work is one call into the shared kernel module
    (:func:`repro.engine.kernels.ranks_batch`).
    """
    return ranks_batch(weights, incomparable_points, q,
                       dominating=dominating,
                       chunk_floats=chunk_floats)
