"""Monochromatic reverse top-k in two dimensions (exact sweep).

In 2-D the weighting space is one-dimensional: ``w = (w1, 1 - w1)`` with
``w1 in [0, 1]``.  For each data point ``p`` the score difference

    g_p(w1) = f(w, p) - f(w, q)

is linear in ``w1``; ``p`` outranks ``q`` exactly where ``g_p < 0``.
``MRTOPk(q)`` is therefore ``{ w1 : |{p : g_p(w1) < 0}| <= k - 1 }`` — a
union of intervals obtained by sweeping the at-most-``n`` roots of the
``g_p``.  This mirrors the segment-based picture of Figure 2(b) in the
paper and the 2-D algorithms of Vlachou et al. [31] / Chester et
al. [9].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_ATOL = 1e-12


@dataclass(frozen=True)
class WeightInterval:
    """A maximal interval ``[lo, hi]`` of qualifying ``w1`` values."""

    lo: float
    hi: float

    def contains(self, w1: float, *, atol: float = 1e-9) -> bool:
        return self.lo - atol <= w1 <= self.hi + atol

    def midpoint_vector(self) -> np.ndarray:
        """A representative 2-D weighting vector inside the interval."""
        mid = 0.5 * (self.lo + self.hi)
        return np.array([mid, 1.0 - mid])

    @property
    def width(self) -> float:
        return self.hi - self.lo


def beat_count_at(points, q, w1: float) -> int:
    """Exact ``|{p : f(w, p) < f(w, q)}|`` at one ``w1`` (tie -> q wins)."""
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    qv = np.asarray(q, dtype=np.float64)
    w = np.array([w1, 1.0 - w1])
    diff = (pts - qv) @ w
    return int(np.count_nonzero(diff < -_ATOL))


def mrtopk_2d(points, q, k: int) -> list[WeightInterval]:
    """Exact monochromatic reverse top-k result in 2-D.

    Parameters
    ----------
    points:
        The dataset ``P`` as an ``(n, 2)`` array.  If ``q`` itself
        appears in ``P`` its copies tie with ``q`` and do not hurt it.
    q:
        Query point (length-2).
    k:
        Result-size parameter of the underlying top-k query.

    Returns
    -------
    list[WeightInterval]
        Maximal closed intervals of ``w1`` where ``q`` ranks in the
        top-k.  Empty list when no weighting vector qualifies.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if pts.shape[1] != 2:
        raise ValueError("mrtopk_2d requires 2-dimensional points")
    qv = np.asarray(q, dtype=np.float64)

    # g_p(w1) = a_p * w1 + b_p with a = (dx - dy), b = dy.
    delta = pts - qv
    a = delta[:, 0] - delta[:, 1]
    b = delta[:, 1]

    # Roots of g_p inside (0, 1); points with a == 0 never change side.
    with np.errstate(divide="ignore", invalid="ignore"):
        roots = np.where(np.abs(a) > _ATOL, -b / a, np.nan)
    inside = np.isfinite(roots) & (roots > _ATOL) & (roots < 1.0 - _ATOL)
    breakpoints = np.unique(roots[inside])

    # Elementary interval boundaries.
    bounds = np.concatenate(([0.0], breakpoints, [1.0]))
    mids = 0.5 * (bounds[:-1] + bounds[1:])

    # Beat counts at every elementary-interval midpoint, vectorized:
    # count_j = #{p : a_p * mid_j + b_p < 0}.
    g_mid = np.outer(mids, a) + b  # (intervals, n)
    counts = np.count_nonzero(g_mid < -_ATOL, axis=1)

    qualifying = counts <= k - 1
    intervals: list[WeightInterval] = []
    start: float | None = None
    for j, ok in enumerate(qualifying):
        if ok and start is None:
            start = float(bounds[j])
        if not ok and start is not None:
            intervals.append(WeightInterval(start, float(bounds[j])))
            start = None
    if start is not None:
        intervals.append(WeightInterval(start, 1.0))

    # Degenerate singletons: at a breakpoint between two failing
    # intervals the tie may still let q qualify (count dips there).
    failing_adjacent = _singleton_candidates(bounds, qualifying)
    for w1 in failing_adjacent:
        if beat_count_at(pts, qv, w1) <= k - 1:
            intervals.append(WeightInterval(w1, w1))
    intervals.sort(key=lambda iv: iv.lo)
    return _merge_touching(intervals)


def _singleton_candidates(bounds: np.ndarray,
                          qualifying: np.ndarray) -> list[float]:
    """Interior breakpoints flanked by two non-qualifying intervals."""
    out = []
    for j in range(1, len(bounds) - 1):
        left_ok = qualifying[j - 1]
        right_ok = qualifying[j] if j < len(qualifying) else False
        if not left_ok and not right_ok:
            out.append(float(bounds[j]))
    return out


def _merge_touching(intervals: list[WeightInterval],
                    *, atol: float = 1e-12) -> list[WeightInterval]:
    merged: list[WeightInterval] = []
    for iv in intervals:
        if merged and iv.lo <= merged[-1].hi + atol:
            merged[-1] = WeightInterval(merged[-1].lo,
                                        max(merged[-1].hi, iv.hi))
        else:
            merged.append(iv)
    return merged


def mrtopk_contains(points, q, k: int, w) -> bool:
    """Membership test: is the 2-D weighting vector ``w`` in MRTOPk(q)?"""
    wv = np.asarray(w, dtype=np.float64)
    return beat_count_at(points, q, float(wv[0])) <= k - 1


def mrtopk_sample(points, q, k: int, size: int,
                  rng: np.random.Generator | None = None,
                  ) -> tuple[np.ndarray, float]:
    """Monte-Carlo monochromatic reverse top-k for any dimensionality.

    Exact enumeration of ``MRTOPk(q)`` beyond 2-D requires an
    arrangement of hyperplanes in the (d-1)-simplex, which does not
    scale [31].  This estimator instead draws ``size`` uniform simplex
    vectors and returns (i) the qualifying ones — usable as witnesses
    or as why-not candidates when *none* qualify — and (ii) the hit
    fraction, an unbiased estimate of the result region's measure.

    Returns
    -------
    (samples, fraction):
        ``samples`` is a ``(h, d)`` array of vectors whose top-k
        contains ``q``; ``fraction`` is ``h / size``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if size <= 0:
        raise ValueError("size must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    qv = np.asarray(q, dtype=np.float64)
    wts = rng.dirichlet(np.ones(pts.shape[1]), size=size)
    scores = wts @ pts.T
    q_scores = wts @ qv
    beats = np.count_nonzero(scores < q_scores[:, None] - _ATOL,
                             axis=1)
    hits = wts[beats <= k - 1]
    return hits, len(hits) / size
