"""Reverse top-k query engines.

* :mod:`repro.rtopk.mono` — the monochromatic reverse top-k query in two
  dimensions, solved exactly as a sweep over the weighting-space
  parameter ``w1`` (the result is a union of ``w1`` intervals, cf.
  Figure 2(b) of the paper).
* :mod:`repro.rtopk.bichromatic` — the bichromatic reverse top-k query
  over a finite weighting-vector set ``W``: a vectorized naive engine
  and an RTA-style threshold engine [Vlachou et al., TKDE 2011].
"""

from repro.rtopk.bichromatic import brtopk_naive, brtopk_rta
from repro.rtopk.grta import brtopk_grta, kmeans_weights
from repro.rtopk.influence import (
    influence_gain,
    influence_score,
    most_influential,
)
from repro.rtopk.mono import WeightInterval, mrtopk_2d, mrtopk_sample

__all__ = [
    "WeightInterval",
    "brtopk_grta",
    "brtopk_naive",
    "brtopk_rta",
    "influence_gain",
    "influence_score",
    "kmeans_weights",
    "most_influential",
    "mrtopk_2d",
    "mrtopk_sample",
]
