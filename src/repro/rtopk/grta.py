"""GRTA — grouped threshold processing for bichromatic reverse top-k.

RTA's pruning power depends on consecutive weighting vectors being
similar (the previous top-k buffer only prunes when it still outranks
``q`` under the next vector).  GRTA [Vlachou et al., TKDE 2011]
strengthens this by *clustering* ``W`` first and processing each
cluster around its representative: the representative's top-k result
is computed once and used as the initial buffer for every member.

This implementation clusters with a small from-scratch k-means over
the weighting vectors (deterministic seeding), orders members within
a cluster by distance to the representative, and otherwise reuses the
RTA skip test.  Exactness is unaffected — the buffer only ever
*skips* vectors it can prove are non-members — and the test suite
asserts GRTA ≡ RTA ≡ naive.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.vectors import score_many
from repro.index.rtree import RTree
from repro.topk.brs import BRSEngine
from repro.topk.scan import topk_scan


def kmeans_weights(weights, n_clusters: int, *, iterations: int = 20,
                   seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Tiny deterministic k-means over simplex vectors.

    Returns ``(labels, centroids)``.  Centroids are renormalized onto
    the simplex each round so representatives stay valid weighting
    vectors.  Empty clusters are re-seeded from the farthest point.
    """
    wts = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    n = len(wts)
    n_clusters = max(1, min(n_clusters, n))
    rng = np.random.default_rng(seed)
    centroids = wts[rng.choice(n, size=n_clusters, replace=False)]
    labels = np.full(n, -1, dtype=np.int64)   # force >= 1 update round
    for _ in range(iterations):
        dists = np.linalg.norm(
            wts[:, None, :] - centroids[None, :, :], axis=2)
        new_labels = np.argmin(dists, axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(n_clusters):
            members = wts[labels == c]
            if len(members):
                centroid = members.mean(axis=0)
            else:
                # Re-seed an empty cluster from the worst-served point.
                worst = int(np.argmax(np.min(dists, axis=1)))
                centroid = wts[worst]
            centroid = np.clip(centroid, 1e-12, None)
            centroids[c] = centroid / centroid.sum()
    return labels, centroids


def brtopk_grta(source, weights, q, k: int, *,
                n_clusters: int | None = None,
                seed: int = 0) -> np.ndarray:
    """Grouped RTA: cluster ``W``, share the buffer per cluster.

    Parameters mirror :func:`repro.rtopk.bichromatic.brtopk_rta`;
    ``n_clusters`` defaults to ``ceil(sqrt(|W|))``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if isinstance(source, RTree):
        pts = source.points
        engine = BRSEngine(source)

        def full_topk(w):
            return engine.topk(w, k)
    else:
        pts = np.atleast_2d(np.asarray(source, dtype=np.float64))

        def full_topk(w):
            return topk_scan(pts, w, k)

    wts = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    qv = np.asarray(q, dtype=np.float64)
    if len(pts) < k:
        raise ValueError(f"dataset smaller than k={k}")
    if n_clusters is None:
        n_clusters = int(np.ceil(np.sqrt(len(wts))))
    labels, centroids = kmeans_weights(wts, n_clusters, seed=seed)

    result: list[int] = []
    for c in range(len(centroids)):
        member_idx = np.nonzero(labels == c)[0]
        if len(member_idx) == 0:
            continue
        # Buffer seeded by the cluster representative's top-k.
        buffer_ids = full_topk(centroids[c])
        # Members closest to the representative first.
        order = member_idx[np.argsort(
            np.linalg.norm(wts[member_idx] - centroids[c], axis=1))]
        for idx in order:
            w = wts[idx]
            q_score = float(w @ qv)
            buf_scores = score_many(w, pts[buffer_ids])
            if np.count_nonzero(buf_scores < q_score - 1e-12) >= k:
                continue          # provably not a member
            ids = full_topk(w)
            buffer_ids = ids
            kth_score = float(w @ pts[ids[-1]])
            if q_score <= kth_score + 1e-12:
                result.append(int(idx))
    return np.asarray(sorted(result), dtype=np.int64)
