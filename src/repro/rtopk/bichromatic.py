"""Bichromatic reverse top-k engines.

``BRTOPk(q) = { w in W : rank(q, w) <= k }`` over a finite preference
set ``W``.  Two engines:

* :func:`brtopk_naive` — fully vectorized rank computation for every
  ``w`` at once (chunked to bound memory).  Exact oracle and surprisingly
  competitive in NumPy.
* :func:`brtopk_rta` — the Reverse top-k Threshold Algorithm of Vlachou
  et al. [31]: process the vectors of ``W`` in a locality-preserving
  order, keep the top-k point *buffer* of the last fully-evaluated
  vector, and skip a vector whenever the buffered k points already
  outscore ``q`` under it (then q cannot be in its top-k).  Only on a
  failed skip does it fall back to a full (BRS or scan) top-k.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels import ranks_batch
from repro.geometry.vectors import score_many
from repro.index.rtree import RTree
from repro.topk.brs import BRSEngine
from repro.topk.scan import topk_scan


def brtopk_naive(points, weights, q, k: int) -> np.ndarray:
    """Indices into ``weights`` whose top-k result contains ``q``.

    Exact and vectorized: one chunked batched-rank kernel call
    (:func:`repro.engine.kernels.ranks_batch`) counts, per weighting
    vector, the points scoring strictly below ``q``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    wts = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    if len(wts) == 0:
        return np.empty(0, dtype=np.int64)
    ranks = ranks_batch(wts, points, q)
    return np.nonzero(ranks <= k)[0].astype(np.int64)


def brtopk_rta(source, weights, q, k: int) -> np.ndarray:
    """RTA-style bichromatic reverse top-k.

    Parameters
    ----------
    source:
        An :class:`RTree` (BRS is used for the fallback top-k) or an
        ``(n, d)`` point array (sequential scan fallback).
    weights:
        The preference set ``W`` as an ``(m, d)`` array.
    q:
        Query point.
    k:
        Top-k parameter.

    Returns
    -------
    numpy.ndarray
        Sorted indices into ``weights`` belonging to ``BRTOPk(q)``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if isinstance(source, RTree):
        pts = source.points
        engine = BRSEngine(source)

        def full_topk(w):
            return engine.topk(w, k)
    else:
        pts = np.atleast_2d(np.asarray(source, dtype=np.float64))

        def full_topk(w):
            return topk_scan(pts, w, k)

    wts = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    qv = np.asarray(q, dtype=np.float64)
    if len(pts) < k:
        raise ValueError(f"dataset smaller than k={k}")

    # Locality order: sort vectors lexicographically so consecutive
    # vectors are similar and the buffer prunes well.
    order = np.lexsort(wts.T[::-1])

    result: list[int] = []
    buffer_ids: np.ndarray | None = None
    for idx in order:
        w = wts[idx]
        q_score = float(w @ qv)
        if buffer_ids is not None:
            buf_scores = score_many(w, pts[buffer_ids])
            if np.count_nonzero(buf_scores < q_score - 1e-12) >= k:
                # The buffered k points already outrank q: skip.
                continue
        ids = full_topk(w)
        buffer_ids = ids
        kth_score = float(w @ pts[ids[-1]])
        if q_score <= kth_score + 1e-12:
            result.append(int(idx))
    return np.asarray(sorted(result), dtype=np.int64)


def why_not_candidates(points, weights, q, k: int) -> np.ndarray:
    """Indices of ``weights`` *excluded* from BRTOPk(q).

    Definition 5 restricts why-not vectors of the bichromatic problem to
    ``W \\ BRTOPk(q)``; this helper materializes that set.
    """
    wts = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    members = set(brtopk_naive(points, wts, q, k).tolist())
    return np.asarray(
        [i for i in range(len(wts)) if i not in members], dtype=np.int64)
