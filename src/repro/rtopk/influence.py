"""Influence analysis on top of reverse top-k queries.

Vlachou et al. [33] define the *influence* of a product as the size
of its bichromatic reverse top-k result — how many customers would
shortlist it.  The paper's introduction motivates why-not questions
with exactly this market view, so the application layer belongs in a
complete reproduction:

* :func:`influence_score` — ``|BRTOPk(q)|`` for one product;
* :func:`most_influential` — the m products of a catalogue with the
  largest influence (the "top-m influential" query of [33]);
* :func:`influence_gain` — how much a refinement (e.g. an MQP answer)
  grows a product's influence, connecting WQRTQ's output back to the
  business metric it optimizes.
"""

from __future__ import annotations

import numpy as np

from repro.rtopk.bichromatic import brtopk_naive


def influence_score(points, weights, q, k: int) -> int:
    """``|BRTOPk(q)|`` — the number of customers shortlisting ``q``."""
    return int(len(brtopk_naive(points, weights, q, k)))


def most_influential(points, weights, k: int, m: int,
                     *, candidates=None) -> list[tuple[int, int]]:
    """The ``m`` most influential products of the catalogue.

    Scores every candidate product (default: all of ``points``) by
    the size of its reverse top-k result *against the rest of the
    catalogue* and returns ``[(point_id, influence), ...]`` in
    descending influence, ties broken by id.

    Notes
    -----
    Each candidate is evaluated against ``points`` with itself
    removed — a product does not compete with itself — matching the
    monochromatic treatment of the running example (q is scored
    against P).
    """
    if m <= 0:
        raise ValueError("m must be positive")
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    wts = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    cand = (np.arange(len(pts)) if candidates is None
            else np.asarray(candidates, dtype=np.int64))
    scores: list[tuple[int, int]] = []
    mask = np.ones(len(pts), dtype=bool)
    for pid in cand:
        mask[pid] = False
        influence = influence_score(pts[mask], wts, pts[pid], k)
        mask[pid] = True
        scores.append((int(pid), influence))
    scores.sort(key=lambda t: (-t[1], t[0]))
    return scores[:m]


def influence_gain(points, weights, q, q_refined, k: int,
                   *, k_refined: int | None = None) -> dict:
    """Influence before/after a refinement.

    Quantifies what an MQP/MQWK answer buys: how many customers the
    refined product reaches versus the original.  ``k_refined``
    defaults to ``k`` (pure-q refinements leave k unchanged).
    """
    k_after = k if k_refined is None else int(k_refined)
    before = influence_score(points, weights, q, k)
    after = influence_score(points, weights, q_refined, k_after)
    return {
        "before": before,
        "after": after,
        "gain": after - before,
        "relative_gain": ((after - before) / before
                          if before else float("inf") if after else 0.0),
    }
