"""Synthetic dataset generators (Section 5.1 of the paper).

The paper evaluates on *Independent* and *Anti-correlated* synthetic
data; *Correlated* is included as well since it is standard in the
reverse top-k literature and exercises the opposite extreme.  All
generators:

* produce points in ``[0, 1]^d`` (scores assume non-negative
  coordinates; smaller is better),
* take an explicit seed / :class:`numpy.random.Generator` for
  reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.vectors import score_many


def _rng_of(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def independent(n: int, d: int, *, seed=0) -> np.ndarray:
    """Uniform i.i.d. attributes in ``[0, 1]^d``."""
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    return _rng_of(seed).random((n, d))


def anticorrelated(n: int, d: int, *, seed=0,
                   spread: float = 0.35) -> np.ndarray:
    """Anti-correlated attributes (Börzsönyi-style generator).

    Points concentrate around the anti-diagonal hyperplane
    ``sum(x) = d/2``: a point good in one dimension tends to be bad in
    the others, producing a large skyline — the hard case for
    preference queries.  The per-point base varies only slightly
    (σ = 0.05) while the zero-sum offsets are wide, so pairwise
    attribute correlations are strongly negative.
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    rng = _rng_of(seed)
    out = np.empty((n, d))
    filled = 0
    while filled < n:
        batch = (n - filled) * 2 + 16
        base = rng.normal(0.5, 0.05, size=batch)
        offsets = rng.uniform(-spread, spread, size=(batch, d))
        offsets -= offsets.mean(axis=1, keepdims=True)
        candidate = base[:, None] + offsets
        ok = np.all((candidate >= 0.0) & (candidate <= 1.0), axis=1)
        good = candidate[ok]
        take = min(n - filled, len(good))
        out[filled:filled + take] = good[:take]
        filled += take
    return out


def correlated(n: int, d: int, *, seed=0,
               spread: float = 0.12) -> np.ndarray:
    """Correlated attributes: good in one dimension, good in all."""
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    rng = _rng_of(seed)
    out = np.empty((n, d))
    filled = 0
    while filled < n:
        batch = (n - filled) * 2 + 16
        base = rng.random(batch)
        noise = rng.uniform(-spread, spread, size=(batch, d))
        candidate = base[:, None] + noise
        ok = np.all((candidate >= 0.0) & (candidate <= 1.0), axis=1)
        good = candidate[ok]
        take = min(n - filled, len(good))
        out[filled:filled + take] = good[:take]
        filled += take
    return out


_GENERATORS = {
    "independent": independent,
    "anticorrelated": anticorrelated,
    "correlated": correlated,
}


def make_dataset(kind: str, n: int, d: int, *, seed=0) -> np.ndarray:
    """Dispatch by name: ``independent`` / ``anticorrelated`` /
    ``correlated`` (also accepts the realistic stand-ins ``nba`` and
    ``household``, ignoring ``d``)."""
    kind = kind.lower()
    if kind in _GENERATORS:
        return _GENERATORS[kind](n, d, seed=seed)
    if kind == "nba":
        from repro.data.realistic import nba_like
        return nba_like(n=n, seed=seed)
    if kind == "household":
        from repro.data.realistic import household_like
        return household_like(n=n, seed=seed)
    raise ValueError(f"unknown dataset kind: {kind!r}")


def preference_set(m: int, d: int, *, seed=0,
                   concentration: float = 1.0) -> np.ndarray:
    """``m`` weighting vectors drawn from a flat Dirichlet.

    ``concentration`` > 1 pulls the vectors toward the simplex centre
    (homogeneous customers), < 1 toward the vertices (specialists).
    """
    if m <= 0 or d <= 0:
        raise ValueError("m and d must be positive")
    rng = _rng_of(seed)
    return rng.dirichlet(np.full(d, concentration), size=m)


def query_point_with_rank(points, w, target_rank: int) -> np.ndarray:
    """A query point whose rank under ``w`` is (close to) a target.

    The paper's Figure 10 varies "the actual ranking of q under Wm" as
    an experimental knob.  We realize it by returning a copy of the
    dataset point ranked ``target_rank`` under ``w``: ties resolve in
    the query point's favour, so its rank equals ``target_rank`` up to
    duplicate scores (exact for distinct scores).

    Parameters
    ----------
    points:
        The dataset.
    w:
        The (single) why-not weighting vector.
    target_rank:
        Desired 1-based rank (``<= len(points)``).
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if not 1 <= target_rank <= len(pts):
        raise ValueError("target_rank out of range")
    scores = score_many(w, pts)
    order = np.argsort(scores, kind="stable")
    return pts[order[target_rank - 1]].copy()
