"""Catalogue — the versioned, mutable front door to a dataset.

The paper's why-not machinery assumes a fixed product set ``P``, and
until this module existed so did every entry point of the repro: a
catalogue was frozen at registration, and changing one product meant
reloading the array and rebuilding the R-tree, partitions and caches
from scratch.  A long-running service under live traffic needs the
opposite shape — data as an append/update stream over versioned
snapshots:

* a :class:`Catalogue` owns an append-log of mutations
  (:meth:`~Catalogue.add_products`, :meth:`~Catalogue.update_products`,
  :meth:`~Catalogue.remove_products`) and a monotonically versioned
  chain of immutable snapshots;
* each snapshot is a plain
  :class:`~repro.engine.context.DatasetContext`, derived
  **copy-on-write** from its predecessor
  (:meth:`~repro.engine.context.DatasetContext.derive`): unchanged
  arrays are reused, the R-tree is patched rather than re-bulk-loaded,
  and only the per-``q`` cache entries the mutation actually
  invalidated are dropped (an epoch check, not a flush);
* readers **pin** a snapshot (grab :attr:`~Catalogue.snapshot` once
  per request/batch) and get snapshot-consistent answers for its
  whole lifetime, no matter how far writers advance the version;
* every product has a **stable id**, assigned at add time and never
  reused, so mutations address products by id while the engine keeps
  its row-indexed internals (ids compact to rows per snapshot).

The pre-existing immutable entry points are untouched semantically: a
standalone ``DatasetContext`` *is* the snapshot of a single-version
catalogue (version 0), and
:class:`~repro.service.registry.CatalogueRegistry` now wraps every
registration in a ``Catalogue`` so the HTTP daemon can accept
mutations without restarting.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.engine.context import DEFAULT_CACHE_CAP, DatasetContext
from repro.engine.delta import SnapshotDelta

__all__ = ["Catalogue", "DEFAULT_DELTA_HISTORY", "MutationRecord"]

#: Deltas retained for :meth:`Catalogue.deltas_since`.  Enough that a
#: watch sweep lagging a burst of mutations still sees the full chain;
#: a subscriber further behind simply re-answers (the conservative
#: fallback), so the bound trades memory for skip opportunities, not
#: correctness.
DEFAULT_DELTA_HISTORY = 64


@dataclass(frozen=True)
class MutationRecord:
    """One entry of a catalogue's append-log.

    ``version`` is the snapshot version the mutation produced,
    ``op`` one of ``"add"`` / ``"update"`` / ``"remove"``,
    ``count`` the number of products it touched and ``n_after`` the
    catalogue size afterwards.
    """

    version: int
    op: str
    count: int
    n_after: int

    def to_dict(self) -> dict:
        return {"version": self.version, "op": self.op,
                "count": self.count, "n_after": self.n_after}


class Catalogue:
    """A mutable, versioned product set serving immutable snapshots.

    Parameters
    ----------
    points:
        Initial catalogue as an ``(n, d)`` array (version 0
        snapshot).  Ignored when ``context`` is given.
    context:
        Adopt an existing :class:`DatasetContext` as the version-0
        snapshot instead of building one — e.g. a context whose
        caches an embedding application already shares.
    capacity, max_partitions, max_box_caches:
        Forwarded to every snapshot the catalogue builds.

    Thread safety: mutations are serialized by an internal lock and
    swap the current snapshot atomically; :attr:`snapshot` is a single
    attribute read, so readers never block writers (or vice versa)
    beyond that read.  A reader that holds on to a snapshot keeps
    answering against it — old snapshots stay alive exactly as long
    as someone references them.
    """

    def __init__(self, points=None, *,
                 context: DatasetContext | None = None,
                 capacity: int | None = None,
                 max_partitions: int | None = DEFAULT_CACHE_CAP,
                 max_box_caches: int | None = DEFAULT_CACHE_CAP,
                 delta_history: int = DEFAULT_DELTA_HISTORY):
        if context is None:
            if points is None:
                raise ValueError("Catalogue needs points or a context")
            context = DatasetContext(points, capacity=capacity,
                                     max_partitions=max_partitions,
                                     max_box_caches=max_box_caches)
        elif points is not None:
            raise ValueError("pass either points or context, not both")
        self._lock = threading.RLock()
        self._snapshot = context
        self._ids = np.asarray(context.product_ids, dtype=np.int64)
        # _rows_for addresses ids via searchsorted, so the id array
        # must be strictly increasing — true for every id array this
        # class produces, enforced here for adopted contexts.
        if len(self._ids) > 1 and np.any(np.diff(self._ids) <= 0):
            raise ValueError("the adopted context's product_ids must "
                             "be strictly increasing")
        self._next_id = int(self._ids[-1]) + 1 if len(self._ids) else 0
        self._log: list[MutationRecord] = []
        self._deltas: deque[SnapshotDelta] = deque(
            maxlen=max(1, int(delta_history)))
        self._adds = 0
        self._updates = 0
        self._removes = 0

    # ------------------------------------------------------------------
    # Reading (pin a snapshot, then use it for the whole request)
    # ------------------------------------------------------------------

    @property
    def snapshot(self) -> DatasetContext:
        """The current snapshot.  Grab it **once** per request/batch:
        the returned context is immutable and snapshot-consistent for
        as long as you hold it, while the catalogue may advance."""
        return self._snapshot

    @property
    def version(self) -> int:
        return self._snapshot.version

    @property
    def n(self) -> int:
        return self._snapshot.n

    @property
    def dim(self) -> int:
        return self._snapshot.dim

    def product_ids(self) -> np.ndarray:
        """Stable ids of the current products (ascending)."""
        with self._lock:
            return self._ids.copy()

    def history(self) -> tuple[MutationRecord, ...]:
        """The append-log, oldest first."""
        with self._lock:
            return tuple(self._log)

    def deltas_since(self, version: int) -> list[SnapshotDelta] | None:
        """The delta chain from snapshot ``version`` to the current
        one, oldest first — what a subscriber pinned to ``version``
        must fold to catch up.

        Returns ``[]`` when ``version`` is current (or newer — a
        racing writer may have advanced past the caller's read), and
        ``None`` when the bounded history no longer reaches back to
        ``version``: the caller cannot prove anything about the
        missing prefix and must treat the answer as affected.
        """
        version = int(version)
        with self._lock:
            if version >= self._snapshot.version:
                return []
            chain = [delta for delta in self._deltas
                     if delta.version > version]
            if not chain or chain[0].parent_version != version:
                return None
            return chain

    def describe(self, *, with_snapshot: bool = False):
        """JSON-safe lifecycle summary: version, size, mutation
        counters — the payload behind ``GET /catalogues/<name>``.

        ``with_snapshot=True`` returns ``(summary, snapshot)`` where
        the snapshot is exactly the one the summary describes — a
        caller combining the two (the registry's ``describe_one``)
        must not read ``self.snapshot`` separately, or a concurrent
        writer can slip a newer snapshot between the two reads.
        """
        with self._lock:
            snapshot = self._snapshot
            summary = {
                "version": snapshot.version,
                "n": snapshot.n,
                "d": snapshot.dim,
                "next_product_id": self._next_id,
                "mutations": {
                    "count": len(self._log),
                    "adds": self._adds,
                    "updates": self._updates,
                    "removes": self._removes,
                },
            }
        return (summary, snapshot) if with_snapshot else summary

    # ------------------------------------------------------------------
    # Mutations (the append-log)
    # ------------------------------------------------------------------

    def _coerce_products(self, products) -> np.ndarray:
        try:
            pts = np.atleast_2d(np.asarray(products, dtype=np.float64))
        except (TypeError, ValueError):
            raise ValueError(f"products must be a numeric (m, d) "
                             f"array, got {products!r}") from None
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("products must be a non-empty (m, d) "
                             f"array, got shape {pts.shape}")
        if pts.shape[1] != self.dim:
            raise ValueError(
                f"products must have {self.dim} coordinates to match "
                f"the catalogue, got {pts.shape[1]}")
        if not np.all(np.isfinite(pts)):
            raise ValueError("product coordinates must be finite")
        return pts

    def _rows_for(self, ids) -> np.ndarray:
        """Current rows of the given product ids (must all exist)."""
        try:
            wanted = np.asarray(ids, dtype=np.int64).reshape(-1)
        except (TypeError, ValueError):
            raise ValueError(f"ids must be a flat list of product "
                             f"ids, got {ids!r}") from None
        if wanted.size == 0:
            raise ValueError("ids must be non-empty")
        if len(np.unique(wanted)) != len(wanted):
            raise ValueError("ids must not contain duplicates")
        # self._ids is strictly increasing (append-only id assignment,
        # removal preserves order), so membership is a searchsorted.
        rows = np.searchsorted(self._ids, wanted)
        missing = ((rows >= len(self._ids))
                   | (self._ids[np.minimum(rows, len(self._ids) - 1)]
                      != wanted))
        if np.any(missing):
            bad = sorted(int(i) for i in wanted[missing])
            raise ValueError(f"unknown product id(s): {bad}")
        return rows

    def _commit(self, snapshot: DatasetContext, ids: np.ndarray,
                op: str, count: int, *, changed,
                removed_rows=()) -> None:
        parent = self._snapshot
        self._snapshot = snapshot
        self._ids = ids
        self._log.append(MutationRecord(
            version=snapshot.version, op=op, count=count,
            n_after=snapshot.n))
        self._deltas.append(SnapshotDelta.from_mutation(
            parent_version=parent.version, version=snapshot.version,
            op=op, changed=changed, removed_rows=removed_rows,
            n_after=snapshot.n))

    def add_products(self, products) -> np.ndarray:
        """Append products; returns their newly assigned stable ids.

        Advances the catalogue one version; the new snapshot inherits
        every cache entry the new coordinates cannot have affected.
        """
        with self._lock:
            pts = self._coerce_products(products)
            parent = self._snapshot
            new_ids = np.arange(self._next_id,
                                self._next_id + len(pts),
                                dtype=np.int64)
            ids = np.concatenate([self._ids, new_ids])
            snapshot = parent.derive(
                np.vstack([parent.points, pts]), appended=len(pts),
                version=parent.version + 1, product_ids=ids)
            self._next_id += len(pts)
            self._adds += len(pts)
            self._commit(snapshot, ids, "add", len(pts), changed=pts)
            return new_ids.copy()

    def update_products(self, ids, products) -> int:
        """Replace the coordinates of existing products (by id).

        Returns the new catalogue version.
        """
        with self._lock:
            pts = self._coerce_products(products)
            rows = self._rows_for(ids)
            if len(rows) != len(pts):
                raise ValueError(
                    f"update needs one coordinate row per id, got "
                    f"{len(rows)} id(s) and {len(pts)} row(s)")
            parent = self._snapshot
            new_pts = parent.points.copy()
            new_pts[rows] = pts
            snapshot = parent.derive(
                new_pts, updated_rows=rows,
                version=parent.version + 1,
                product_ids=self._ids)
            self._updates += len(rows)
            # Old and new coordinates both matter to relevance: the
            # same pair the derive() epoch check compares against.
            self._commit(snapshot, self._ids, "update", len(rows),
                         changed=np.vstack([parent.points[rows], pts]))
            return snapshot.version

    def remove_products(self, ids) -> int:
        """Delete products (by id); returns the new version.

        The surviving rows compact; the snapshot chain renumbers every
        inherited cache entry through the old→new row map, so
        untouched products keep their cached partitions.
        """
        with self._lock:
            rows = self._rows_for(ids)
            parent = self._snapshot
            if len(rows) >= parent.n:
                raise ValueError("cannot remove every product — a "
                                 "catalogue must stay non-empty")
            keep = np.ones(parent.n, dtype=bool)
            keep[rows] = False
            surviving = self._ids[keep]
            snapshot = parent.derive(
                parent.points[keep], removed_rows=rows,
                version=parent.version + 1, product_ids=surviving)
            self._removes += len(rows)
            self._commit(snapshot, surviving, "remove", len(rows),
                         changed=parent.points[rows],
                         removed_rows=rows)
            return snapshot.version

    def apply(self, op: str, *, ids=None, products=None) -> dict:
        """One mutation with an atomically consistent description.

        The wire endpoint needs the mutation *and* the resulting
        version/size as one unit — reading ``version``/``n`` after a
        typed mutation call could observe a concurrent writer's
        later commit.  Returns ``{"op", "ids", "version", "n"}``.
        """
        with self._lock:
            if op == "add":
                if products is None:
                    raise ValueError("'add' requires 'products'")
                out_ids = self.add_products(products).tolist()
            elif op == "update":
                if ids is None or products is None:
                    raise ValueError(
                        "'update' requires 'ids' and 'products'")
                self.update_products(ids, products)
                out_ids = [int(i) for i in np.asarray(ids).reshape(-1)]
            elif op == "remove":
                if ids is None:
                    raise ValueError("'remove' requires 'ids'")
                self.remove_products(ids)
                out_ids = [int(i) for i in np.asarray(ids).reshape(-1)]
            else:
                raise ValueError(f"op must be 'add', 'update' or "
                                 f"'remove', got {op!r}")
            return {"op": op, "ids": out_ids,
                    "version": self.version, "n": self.n}

    def __repr__(self) -> str:   # pragma: no cover - cosmetic
        return (f"Catalogue(version={self.version}, n={self.n}, "
                f"d={self.dim}, mutations={len(self._log)})")
