"""Dataset generators and the catalogue lifecycle front door.

* :mod:`repro.data.synthetic` — the Independent and Anti-correlated
  distributions the paper generates (plus Correlated, standard in this
  literature), and simplex-uniform preference sets.
* :mod:`repro.data.realistic` — statistical stand-ins for the paper's
  real datasets (NBA 17K×13, Household 127K×6), which are not
  redistributable; see DESIGN.md §4 for the substitution rationale.
* :mod:`repro.data.catalogue` — :class:`Catalogue`, the versioned
  *mutable* product set: an append-log of add/update/remove mutations
  over immutable, copy-on-write snapshots.
"""

from repro.data.catalogue import Catalogue, MutationRecord
from repro.data.realistic import household_like, nba_like
from repro.data.synthetic import (
    anticorrelated,
    correlated,
    independent,
    make_dataset,
    preference_set,
    query_point_with_rank,
)

__all__ = [
    "Catalogue",
    "MutationRecord",
    "anticorrelated",
    "correlated",
    "household_like",
    "independent",
    "make_dataset",
    "nba_like",
    "preference_set",
    "query_point_with_rank",
]
