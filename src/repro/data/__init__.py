"""Dataset generators for the experimental evaluation.

* :mod:`repro.data.synthetic` — the Independent and Anti-correlated
  distributions the paper generates (plus Correlated, standard in this
  literature), and simplex-uniform preference sets.
* :mod:`repro.data.realistic` — statistical stand-ins for the paper's
  real datasets (NBA 17K×13, Household 127K×6), which are not
  redistributable; see DESIGN.md §4 for the substitution rationale.
"""

from repro.data.realistic import household_like, nba_like
from repro.data.synthetic import (
    anticorrelated,
    correlated,
    independent,
    make_dataset,
    preference_set,
    query_point_with_rank,
)

__all__ = [
    "anticorrelated",
    "correlated",
    "household_like",
    "independent",
    "make_dataset",
    "nba_like",
    "preference_set",
    "query_point_with_rank",
]
