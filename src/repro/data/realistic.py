"""Statistical stand-ins for the paper's real datasets.

The paper evaluates on two real datasets that are not freely
redistributable:

* **NBA** — 17K 13-dimensional points; per-player season statistics
  (points, rebounds, assists, ...).  Box-score stats are positively
  correlated (good players are good at many things), non-negative, and
  right-skewed.
* **Household** — 127K 6-dimensional points; the share of an American
  family's annual income spent on six expenditure types.  Shares are
  compositional (they sum to roughly a constant), weakly
  anti-correlated, and concentrated.

The generators below mimic those shapes.  The experiments only depend
on the *distributional* character of the data (correlation structure,
skew, skyline size) — see DESIGN.md §4 for the substitution rationale.
Values are rescaled to ``[0, 1]`` per attribute, matching the synthetic
generators' range.
"""

from __future__ import annotations

import numpy as np

NBA_SIZE = 17_000
NBA_DIM = 13
HOUSEHOLD_SIZE = 127_000
HOUSEHOLD_DIM = 6


def _rng_of(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def nba_like(n: int = NBA_SIZE, d: int = NBA_DIM, *,
             seed=0) -> np.ndarray:
    """Skewed, positively-correlated box-score-style data.

    A latent per-player "skill" drives all attributes (correlation),
    each attribute adds gamma-distributed noise (right skew), and the
    result is min-max scaled per column.  Because *smaller is better*
    in this library's convention, values are inverted so that strong
    players have small coordinates — mirroring how the paper's
    preference functions must have oriented the data.
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    rng = _rng_of(seed)
    skill = rng.gamma(shape=2.0, scale=1.0, size=n)
    loadings = rng.uniform(0.5, 1.5, size=d)
    noise = rng.gamma(shape=1.5, scale=0.6, size=(n, d))
    raw = skill[:, None] * loadings[None, :] + noise
    scaled = _minmax(raw)
    return 1.0 - scaled  # invert: high raw stat -> small (good) value


def household_like(n: int = HOUSEHOLD_SIZE, d: int = HOUSEHOLD_DIM, *,
                   seed=0) -> np.ndarray:
    """Compositional expenditure-share data (Dirichlet mixture).

    Two household profiles (e.g. renter-ish vs owner-ish spending
    patterns) are mixed to give the mild multi-modality of real
    expenditure data; each row is a share vector scaled to ``[0, 1]``
    per column.
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    rng = _rng_of(seed)
    profile_a = rng.uniform(1.0, 6.0, size=d)
    profile_b = rng.uniform(1.0, 6.0, size=d)
    choose_b = rng.random(n) < 0.4
    shares = np.empty((n, d))
    n_b = int(choose_b.sum())
    if n - n_b:
        shares[~choose_b] = rng.dirichlet(profile_a, size=n - n_b)
    if n_b:
        shares[choose_b] = rng.dirichlet(profile_b, size=n_b)
    return _minmax(shares)


def _minmax(arr: np.ndarray) -> np.ndarray:
    lo = arr.min(axis=0)
    hi = arr.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    return (arr - lo) / span
