"""Dataset and result persistence.

Experiments on 100K+ point datasets should not regenerate data on
every run, and refinement results (which carry NumPy arrays) need a
stable on-disk form for the EXPERIMENTS.md pipeline and for users
archiving analyses.  This module provides:

* :func:`save_dataset` / :func:`load_dataset` — ``.npz`` with a
  metadata header (kind, seed, shape) so a cache hit can be trusted;
* :func:`dataset_cache` — build-or-load wrapper keyed by the
  generator parameters;
* :func:`result_to_dict` / :func:`result_from_dict` /
  :func:`save_results` / :func:`load_results` — JSON-serializable
  forms of the three refinement result types and benchmark rows
  (``result_from_dict`` is the decode half of the public wire schema
  in :mod:`repro.core.protocol`).
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import asdict, is_dataclass
from pathlib import Path

import numpy as np

from repro.core.types import MQPResult, MQWKResult, MWKResult

_FORMAT_VERSION = 1


def save_dataset(path, points, *, kind: str = "unknown",
                 seed: int | None = None) -> Path:
    """Persist a point array with provenance metadata (``.npz``)."""
    path = Path(path)
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path, points=pts,
        meta=np.array(json.dumps({
            "version": _FORMAT_VERSION,
            "kind": kind,
            "seed": seed,
            "n": int(pts.shape[0]),
            "d": int(pts.shape[1]),
        })))
    return path


def load_dataset(path) -> tuple[np.ndarray, dict]:
    """Load a dataset saved by :func:`save_dataset`.

    Returns ``(points, metadata)``.  Raises ``ValueError`` on format
    mismatch so silently-wrong caches cannot be consumed.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        if "points" not in archive or "meta" not in archive:
            raise ValueError(f"{path} is not a repro dataset archive")
        meta = json.loads(str(archive["meta"]))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version: {meta}")
        points = archive["points"]
    if points.shape != (meta["n"], meta["d"]):
        raise ValueError("dataset archive metadata disagrees with "
                         "its payload")
    return points, meta


def dataset_cache(directory, kind: str, n: int, d: int, *,
                  seed: int = 0) -> np.ndarray:
    """Build-or-load a generated dataset, keyed by its parameters.

    A corrupt or truncated cache file (interrupted write, disk error)
    is treated as a miss: the dataset is regenerated from its seed and
    the bad file overwritten, instead of poisoning every future run
    with a load error.
    """
    from repro.data.synthetic import make_dataset

    directory = Path(directory)
    path = directory / f"{kind}_n{n}_d{d}_s{seed}.npz"
    if path.exists():
        try:
            points, meta = load_dataset(path)
        except (ValueError, OSError, EOFError, KeyError,
                zipfile.BadZipFile):
            pass    # unreadable cache — regenerate below
        else:
            if (meta["kind"], meta["n"], meta["d"],
                    meta["seed"]) == (kind, n, d, seed):
                return points
    points = make_dataset(kind, n, d, seed=seed)
    save_dataset(path, points, kind=kind, seed=seed)
    return points


# ---------------------------------------------------------------------
# Result serialization
# ---------------------------------------------------------------------

def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def result_to_dict(result) -> dict:
    """JSON-safe dict for any of the refinement result types."""
    if isinstance(result, MQPResult):
        kind = "mqp"
    elif isinstance(result, MWKResult):
        kind = "mwk"
    elif isinstance(result, MQWKResult):
        kind = "mqwk"
    else:
        raise TypeError(f"unsupported result type: {type(result)}")
    payload = _jsonable(result)
    if kind == "mqwk":
        # Nested sub-results are reproducible from the top level.
        payload.pop("mqp", None)
        payload.pop("mwk", None)
    return {"kind": kind, **payload}


#: Result dataclass fields that serialize as nested lists and must be
#: restored as arrays.  Dtype is inferred (``kth_points`` carries
#: integer ids, the rest float64) so a dict → object → dict round
#: trip is the identity.
_ARRAY_FIELDS = frozenset({"q_refined", "weights_refined",
                           "kth_points", "kth_scores"})

_RESULT_KINDS = {"mqp": MQPResult, "mwk": MWKResult, "mqwk": MQWKResult}


def result_from_dict(payload: dict):
    """Rebuild a refinement result from :func:`result_to_dict` output.

    The inverse direction of the wire schema: ``MQWK``'s nested
    ``mqp``/``mwk`` sub-results are not serialized (they are
    reproducible from the top level) and come back as ``None``.
    Raises ``ValueError`` for unknown kinds or unexpected fields so a
    corrupted payload cannot half-deserialize.
    """
    import dataclasses

    if not isinstance(payload, dict):
        raise ValueError("result payload must be a JSON object")
    kind = payload.get("kind")
    cls = _RESULT_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(_RESULT_KINDS))
        raise ValueError(f"unsupported result kind: {kind!r} "
                         f"(expected one of: {known})")
    names = {f.name for f in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in payload.items():
        if key == "kind":
            continue
        if key not in names:
            raise ValueError(f"unknown field {key!r} for a {kind} "
                             "result payload")
        kwargs[key] = (np.asarray(value) if key in _ARRAY_FIELDS
                       else value)
    return cls(**kwargs)


def save_results(path, results, *, context: dict | None = None) -> Path:
    """Write refinement results (or bench rows) to a JSON report."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = {
        "version": _FORMAT_VERSION,
        "context": _jsonable(context or {}),
        "results": [
            result_to_dict(r) if is_dataclass(r) and not isinstance(
                r, type) else _jsonable(r)
            for r in results
        ],
    }
    path.write_text(json.dumps(body, indent=2, sort_keys=True))
    return path


def load_results(path) -> dict:
    """Load a JSON report written by :func:`save_results`."""
    body = json.loads(Path(path).read_text())
    if body.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported results format: {path}")
    return body
