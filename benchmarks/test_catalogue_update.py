"""Micro-benchmark: incremental catalogue update vs. full rebuild.

Quantifies the catalogue lifecycle API's reason to exist: advancing a
serving catalogue by a small delta (1% of products churn) through
``Catalogue.update_products`` — which derives the next snapshot
copy-on-write (patched R-tree, epoch-checked cache carry-over) — must
beat the pre-lifecycle path of rebuilding a fresh ``DatasetContext``
and re-paying index construction and every ``FindIncom`` traversal.

The churn is placed in the *dominated* region of the space (the
long-tail products every query point beats — the common case for
price/stock updates on uncompetitive items), so the epoch check can
retain the cached partitions of the products being asked about.  The
index-work counters are asserted so the benchmark keeps measuring
what it claims to.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.protocol import Question
from repro.data import (
    Catalogue,
    independent,
    preference_set,
    query_point_with_rank,
)
from repro.engine.context import DatasetContext
from repro.engine.executor import execute_questions

N = 8_000
D = 3
K = 10
RANK = 51
SAMPLE = 50
N_PRODUCTS = 20         # distinct products asked about per batch
CHURN = N // 100        # 1% of the catalogue mutates per round

rng = np.random.default_rng(0)

#: The long-tail segment: the last CHURN rows live at coordinates
#: >= 2, dominated by every query point in the unit cube.
BASE = np.vstack([independent(N - CHURN, D, seed=0),
                  2.0 + rng.random((CHURN, D))])
CHURN_IDS = np.arange(N - CHURN, N)


def churned(round_: int) -> np.ndarray:
    """New coordinates for the churn segment (still dominated)."""
    return 2.0 + np.random.default_rng(100 + round_).random((CHURN, D))


@pytest.fixture(scope="module")
def questions():
    out = []
    for j in range(N_PRODUCTS):
        w = preference_set(1, D, seed=60 + j)
        q = query_point_with_rank(BASE, w[0], RANK)
        out.append(Question(q=q, k=K, why_not=w, algorithm="mwk",
                            options={"sample_size": SAMPLE},
                            id=f"p{j}"))
    return out


def test_incremental_update_beats_full_rebuild(questions):
    """Acceptance criterion: mutating 1% of products and re-answering
    a warm batch through the derived snapshot beats rebuilding the
    context from scratch and answering cold."""
    catalogue = Catalogue(BASE)
    session_answers = execute_questions(catalogue.snapshot, questions,
                                        seed=1)     # warm the caches
    assert all(a.ok for a in session_answers)

    start = time.perf_counter()
    catalogue.update_products(CHURN_IDS, churned(1))
    snapshot = catalogue.snapshot
    incremental_answers = execute_questions(snapshot, questions,
                                            seed=1)
    incremental_seconds = time.perf_counter() - start

    # The derivation really was incremental: tree patched, every
    # cached partition retained, zero new traversals.
    assert snapshot.stats.tree_patches == 1
    assert snapshot.stats.tree_builds == 0
    assert snapshot.stats.partitions_inherited == N_PRODUCTS
    assert snapshot.stats.partition_invalidations == 0
    assert snapshot.stats.findincom_traversals == 0
    assert snapshot.stats.partition_hits == N_PRODUCTS

    start = time.perf_counter()
    fresh = DatasetContext(snapshot.points)
    rebuild_answers = execute_questions(fresh, questions, seed=1)
    rebuild_seconds = time.perf_counter() - start

    # The rebuild really was cold: index built, every product
    # re-traversed.
    assert fresh.stats.tree_builds == 1
    assert fresh.stats.findincom_traversals == N_PRODUCTS

    # Same answers either way (catalogue_version aside).
    for a, b in zip(incremental_answers, rebuild_answers):
        assert a.ok and b.ok
        assert a.penalty == b.penalty

    print(f"\nincremental (1% churn): {incremental_seconds:.3f}s   "
          f"full rebuild: {rebuild_seconds:.3f}s   "
          f"speedup: {rebuild_seconds / incremental_seconds:.1f}x")
    assert incremental_seconds < rebuild_seconds


def test_derive_snapshot(benchmark):
    """Snapshot derivation alone (tree patch + cache carry-over)."""
    catalogue = Catalogue(BASE)
    catalogue.snapshot.tree
    rounds = iter(range(1, 1_000_000))

    def advance():
        catalogue.update_products(CHURN_IDS, churned(next(rounds)))
        return catalogue.snapshot

    snapshot = benchmark(advance)
    assert snapshot.stats.tree_patches == 1


def test_full_context_rebuild(benchmark):
    """The pre-lifecycle alternative: fresh context + index build."""

    def rebuild():
        context = DatasetContext(BASE)
        context.tree
        return context

    context = benchmark(rebuild)
    assert context.stats.tree_builds == 1
