"""Benchmark: delta-maintained watches vs. re-answer-all at 1% churn.

The watch subsystem's reason to exist: with hundreds of standing
questions over a catalogue whose long tail churns (price/stock
updates on uncompetitive products — the common case), delta-driven
maintenance re-answers only the watches a mutation can actually
reach.  This benchmark registers ≥200 standing questions, mutates 1%
of the catalogue in the dominated region, and compares one
maintenance round against the pre-watch strategy of re-answering
every standing question.

Asserted, not just printed: the maintenance pass performs no more
re-answers than the delta checks found affected watches, and that
count is a small fraction of the standing set — the subsystem's
acceptance criterion.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.protocol import Question
from repro.data import independent, preference_set, query_point_with_rank
from repro.data.catalogue import Catalogue
from repro.engine.delta import answer_affected
from repro.service.registry import CatalogueRegistry
from repro.service.watch import WatchManager

N = 4_000
D = 3
K = 10
RANK = 51
N_WATCHES = 200
CHURN = N // 100        # 1% of the catalogue mutates per round

rng = np.random.default_rng(0)

#: The long-tail segment: the last CHURN rows live at coordinates
#: >= 2 — dominated by every query point in the unit cube and
#: scoring far above any top-K boundary, so delta checks can prove
#: most watches unaffected (exactly the claim under test).
BASE = np.vstack([independent(N - CHURN, D, seed=0),
                  2.0 + rng.random((CHURN, D))])
CHURN_IDS = np.arange(N - CHURN, N)


class InlineJobs:
    """Deferred work executed synchronously, so the maintenance
    round's wall time includes its re-answers."""

    def defer(self, fn) -> bool:
        fn()
        return True


@pytest.fixture(scope="module")
def standing_questions():
    out = []
    for j in range(N_WATCHES):
        w = preference_set(1, D, seed=900 + j)
        q = query_point_with_rank(BASE, w[0], RANK)
        out.append(Question(q=q, k=K, why_not=w, algorithm="mqp",
                            id=f"w{j}"))
    return out


def test_delta_maintenance_beats_reanswer_all(standing_questions):
    registry = CatalogueRegistry()
    catalogue = registry.register_catalogue("bench", Catalogue(BASE))
    manager = WatchManager(registry, InlineJobs())
    session = registry.session("bench")

    watches = [manager.create("bench", question)[0]
               for question in standing_questions]
    assert all(watch.state()[0].valid for watch in watches)

    # Expected affected count, computed independently of the
    # manager: the oracle the maintenance pass is held to.
    churned = 2.0 + np.random.default_rng(7).random((CHURN, D))
    catalogue.update_products(CHURN_IDS, churned)
    deltas = catalogue.deltas_since(0)
    assert len(deltas) == 1
    affected = sum(
        answer_affected(watch.question, watch.state()[0], deltas)
        for watch in watches)

    start = time.perf_counter()
    manager.publish("bench")     # inline: sweep + refreshes
    maintained = time.perf_counter() - start

    stats = manager.describe()
    assert stats["delta_checks"] == N_WATCHES
    assert stats["reanswers_performed"] <= affected
    assert stats["reanswers_performed"] + \
        stats["reanswers_skipped"] == N_WATCHES
    # 1% long-tail churn must leave the overwhelming majority of
    # standing questions untouched — otherwise the subsystem is not
    # doing the work the paper-scale serving story needs.
    assert affected <= N_WATCHES // 10

    start = time.perf_counter()
    for question in standing_questions:
        session.ask(question)
    reanswer_all = time.perf_counter() - start

    print(f"\nstanding questions: {N_WATCHES}, churn: {CHURN} rows "
          f"(1%), affected: {affected}")
    print(f"delta-maintained: {maintained:.4f}s "
          f"({N_WATCHES / maintained:,.0f} watches/s), "
          f"re-answers: {stats['reanswers_performed']}")
    print(f"re-answer-all:    {reanswer_all:.4f}s "
          f"({N_WATCHES / reanswer_all:,.0f} watches/s)")
    assert maintained < reanswer_all

    # Round 2: the churned rows move *into* the competitive region,
    # so the affected count is non-zero and the re-answer ≤ affected
    # inequality is exercised with real refreshes, not a vacuous
    # 0 ≤ 0.
    competitive = np.random.default_rng(11).random((CHURN, D))
    catalogue.update_products(CHURN_IDS, competitive)
    deltas = catalogue.deltas_since(catalogue.version - 1)
    affected_2 = sum(
        answer_affected(watch.question, watch.state()[0], deltas)
        for watch in watches)
    assert affected_2 > 0

    start = time.perf_counter()
    manager.publish("bench")
    maintained_2 = time.perf_counter() - start

    stats_2 = manager.describe()
    reanswered_2 = (stats_2["reanswers_performed"]
                    - stats["reanswers_performed"])
    assert reanswered_2 <= affected_2
    assert reanswered_2 < N_WATCHES
    for watch in watches:     # every cached answer is now current
        answer, checked = watch.state()
        assert checked == catalogue.version
        assert answer.valid

    print(f"competitive churn: affected {affected_2}/{N_WATCHES}, "
          f"re-answered {reanswered_2}, "
          f"maintained in {maintained_2:.4f}s "
          f"({N_WATCHES / maintained_2:,.0f} watches/s)")
