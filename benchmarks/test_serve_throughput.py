"""Load benchmark for the HTTP serving layer.

Measures the three serving shapes against a live
``ThreadingHTTPServer`` on loopback:

* one ``/batch`` request answered by the server's executor pool
  (the intended hot path),
* sequential ``/answer`` requests from one client,
* concurrent ``/answer`` requests from a pool of client threads.

Two invariants are asserted so the benchmark keeps measuring what it
claims to: warm ``/batch`` serving must beat per-request cold
construction (fresh context per question — what every CLI invocation
used to pay), and a catalogue with a small LRU cap must hold bounded
resident state under a stream of more distinct products than the cap.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.context import DatasetContext
# Baseline for the served path is the legacy one-shot shim.
from repro.engine.executor import answer_one  # reprolint: disable=DEPRECATED-API
from repro.service import CatalogueRegistry, ServiceClient, create_server

N = 4_000
D = 3
K = 10
RANK = 51
SAMPLE = 50
ALGORITHM = "mwk"
CACHE_CAP = 8
N_PRODUCTS = 50     # > CACHE_CAP, so the LRU must evict


@pytest.fixture(scope="module")
def catalogue():
    return independent(N, D, seed=0)


@pytest.fixture(scope="module")
def questions(catalogue):
    """One question per distinct product — more than the LRU cap."""
    out = []
    for j in range(N_PRODUCTS):
        w = preference_set(1, D, seed=4000 + j)
        q = query_point_with_rank(catalogue, w[0], RANK)
        out.append((q, K, w))
    return out


@pytest.fixture(scope="module")
def registry(catalogue):
    reg = CatalogueRegistry()
    reg.register("bench", catalogue)
    reg.register("bench-bounded", catalogue,
                 max_partitions=CACHE_CAP, max_box_caches=CACHE_CAP)
    return reg


@pytest.fixture(scope="module")
def server(registry):
    srv = create_server(registry)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(port=server.port)


def test_warm_batch_beats_cold_construction(client, catalogue,
                                            questions):
    """Acceptance criterion: one warm ``/batch`` round trip (HTTP
    overhead included) beats answering the same questions with a
    fresh context per question — the pre-serve cold path."""
    subset = questions[:10]

    start = time.perf_counter()
    response = client.batch("bench", subset, algorithm=ALGORITHM,
                            sample_size=SAMPLE, seed=1, workers=1)
    warm_seconds = time.perf_counter() - start
    assert response["summary"]["answered"] == len(subset)

    start = time.perf_counter()
    for index, (q, k, wm) in enumerate(subset):
        context = DatasetContext(catalogue)   # cold: index per call
        item = answer_one(context, index, q, k, wm, ALGORITHM,
                          sample_size=SAMPLE,
                          rng=np.random.default_rng(1 + index))
        assert item.error is None
    cold_seconds = time.perf_counter() - start

    print(f"\nwarm /batch: {warm_seconds:.3f}s   "
          f"cold per-request: {cold_seconds:.3f}s   "
          f"speedup: {cold_seconds / warm_seconds:.1f}x")
    assert warm_seconds < cold_seconds


def test_bounded_cache_under_load(client, registry, questions):
    """>cap distinct products: resident partitions stay <= cap and
    the eviction counters prove the LRU did the bounding."""
    response = client.batch("bench-bounded", questions,
                            algorithm=ALGORITHM, sample_size=SAMPLE,
                            seed=2, workers=4)
    assert response["summary"]["answered"] == N_PRODUCTS
    context = registry.get("bench-bounded")
    assert len(context._partitions) <= CACHE_CAP
    assert len(context._box_caches) <= CACHE_CAP
    assert context.stats.partition_evictions > 0
    assert context.stats.box_cache_evictions > 0


def bench_batch(client, questions, workers):
    response = client.batch("bench", questions, algorithm=ALGORITHM,
                            sample_size=SAMPLE, seed=0,
                            workers=workers)
    assert response["summary"]["failed"] == 0
    return response


@pytest.mark.parametrize("workers", [1, 4])
def test_batch_endpoint(benchmark, client, questions, workers):
    """One /batch request; the server's executor pool fans out."""
    benchmark(bench_batch, client, questions[:20], workers)


def test_sequential_answer_requests(benchmark, client, questions):
    """20 /answer round trips from a single client thread."""
    subset = questions[:20]

    def run():
        for q, k, wm in subset:
            item = client.answer("bench", q, k, wm,
                                 algorithm=ALGORITHM,
                                 sample_size=SAMPLE)
            assert item["error"] is None

    benchmark(run)


def test_threaded_answer_requests(benchmark, server, questions):
    """The same 20 /answer requests from 4 concurrent clients —
    ThreadingHTTPServer gives each its own handler thread."""
    subset = questions[:20]
    clients = [ServiceClient(port=server.port) for _ in range(4)]

    def one(args):
        index, (q, k, wm) = args
        item = clients[index % len(clients)].answer(
            "bench", q, k, wm, algorithm=ALGORITHM,
            sample_size=SAMPLE)
        assert item["error"] is None

    def run():
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(one, enumerate(subset)))

    benchmark(run)
