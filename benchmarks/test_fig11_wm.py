"""Figure 11 benchmark: WQRTQ cost vs. |Wm|.

More why-not vectors mean more k-th-point searches and more QP rows
for MQP, and an |S| x |Wm| distance matrix plus larger candidate
updates for MWK.  The paper sweeps |Wm| in {1..5}.
"""

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k

from conftest import make_query

WM_SIZES = [1, 3, 5]


@pytest.mark.parametrize("wm", WM_SIZES)
def test_mqp_vs_wm(benchmark, wm):
    query = make_query(wm_size=wm)
    result = benchmark(lambda: modify_query_point(query))
    assert len(result.kth_points) == wm


@pytest.mark.parametrize("wm", WM_SIZES)
def test_mwk_vs_wm(benchmark, wm):
    query = make_query(wm_size=wm)
    result = benchmark(
        lambda: modify_weights_and_k(
            query, sample_size=50, rng=np.random.default_rng(0)))
    assert len(result.weights_refined) == wm


@pytest.mark.parametrize("wm", WM_SIZES)
def test_mqwk_vs_wm(benchmark, wm):
    query = make_query(wm_size=wm)
    result = benchmark(
        lambda: modify_query_weights_and_k(
            query, sample_size=20, rng=np.random.default_rng(0)))
    assert len(result.weights_refined) == wm
