"""Figure 7 benchmark: WQRTQ cost vs. dimensionality.

The paper sweeps d in {2, 3, 4, 5} on Independent and Anti-correlated
data and observes all three algorithms degrading with d.  Each
benchmark here is one (algorithm, d) cell on Independent data; the
cross-d comparison is read off the pytest-benchmark table.
"""

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k

from conftest import make_query


@pytest.mark.parametrize("d", [2, 3, 4, 5])
def test_mqp_vs_dimensionality(benchmark, d):
    query = make_query(d=d)
    result = benchmark(lambda: modify_query_point(query))
    assert 0.0 <= result.penalty <= 1.0


@pytest.mark.parametrize("d", [2, 3, 4, 5])
def test_mwk_vs_dimensionality(benchmark, d):
    query = make_query(d=d)
    result = benchmark(
        lambda: modify_weights_and_k(
            query, sample_size=50, rng=np.random.default_rng(0)))
    assert 0.0 <= result.penalty <= 1.0


@pytest.mark.parametrize("d", [2, 3, 4, 5])
def test_mqwk_vs_dimensionality(benchmark, d):
    query = make_query(d=d)
    result = benchmark(
        lambda: modify_query_weights_and_k(
            query, sample_size=20, rng=np.random.default_rng(0)))
    assert 0.0 <= result.penalty <= 1.0
