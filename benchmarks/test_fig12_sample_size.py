"""Figure 12 benchmark: WQRTQ cost vs. sample size.

MWK and MQWK trade time for quality through |S|; MQP ignores it (the
paper's flat MQP curves).  The penalty-vs-|S| trend is asserted
directly in the MWK quality check below.
"""

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k

from conftest import make_query

SAMPLE_SIZES = [25, 100, 400]


@pytest.mark.parametrize("s", SAMPLE_SIZES)
def test_mwk_vs_sample_size(benchmark, s):
    query = make_query()
    result = benchmark(
        lambda: modify_weights_and_k(
            query, sample_size=s, rng=np.random.default_rng(0)))
    assert result.samples_examined >= 0


@pytest.mark.parametrize("s", SAMPLE_SIZES)
def test_mqwk_vs_sample_size(benchmark, s):
    query = make_query()
    result = benchmark(
        lambda: modify_query_weights_and_k(
            query, sample_size=s, q_sample_size=20,
            rng=np.random.default_rng(0)))
    assert 0.0 <= result.penalty <= 1.0


def test_mqp_flat_in_sample_size(benchmark):
    """MQP does not sample; one cell as the figure's flat line."""
    query = make_query()
    result = benchmark(lambda: modify_query_point(query))
    assert 0.0 <= result.penalty <= 1.0


def test_mwk_penalty_improves_with_samples():
    """Quality check (not a timing benchmark): mean penalty at |S|=400
    must not exceed mean penalty at |S|=25 across seeds — the paper's
    downward penalty trend in Figure 12."""
    query = make_query()
    small = [modify_weights_and_k(
        query, sample_size=25,
        rng=np.random.default_rng(seed)).penalty for seed in range(5)]
    large = [modify_weights_and_k(
        query, sample_size=400,
        rng=np.random.default_rng(seed)).penalty for seed in range(5)]
    assert np.mean(large) <= np.mean(small) + 1e-9
