"""Shared benchmark fixtures.

``pytest benchmarks/ --benchmark-only`` runs one benchmark per
figure-and-algorithm at CI-friendly sizes (a few thousand points, 50
weight samples).  The full paper-shaped sweeps — every dataset, every
parameter value — live in ``repro.bench.figures`` and are run with
``python -m repro.bench <figN>``; the pytest benchmarks exercise the
same code paths with stable, comparable timings.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro._testsupport import alarm_timeout
from repro.bench.harness import ExperimentCell, build_workload

#: Same global per-test timeout as tests/conftest.py (larger default:
#: timed benchmark rounds repeat their body many times).
BENCH_TIMEOUT_SECONDS = int(os.environ.get("WQRTQ_BENCH_TIMEOUT",
                                           "300"))


@pytest.fixture(autouse=True)
def _global_bench_timeout(request):
    with alarm_timeout(BENCH_TIMEOUT_SECONDS, request.node.nodeid,
                       what="benchmark"):
        yield

BENCH_N = 4_000
BENCH_D = 3
BENCH_K = 10
BENCH_RANK = 51
BENCH_S = 50


def make_query(dataset: str = "independent", **overrides):
    """A workload for benchmarks (R-tree pre-built)."""
    params = dict(dataset=dataset, n=BENCH_N, d=BENCH_D, k=BENCH_K,
                  rank=BENCH_RANK, wm_size=1, sample_size=BENCH_S,
                  seed=0)
    params.update(overrides)
    cell = ExperimentCell(**params)
    query = build_workload(cell)
    query.rtree
    return query


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)
