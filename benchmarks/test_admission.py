"""Load benchmark for admission-controlled traffic shaping.

Drives a live server into overload — more concurrent requests than
``max_concurrent`` execution slots — and checks the two promises the
admission controller makes:

* **priority shaping works**: under 4x overload, the p50 latency of
  admitted high-priority requests is at least 2x better than the
  same workload served FIFO (everyone at equal priority, so the
  grant order degenerates to arrival order);
* **shedding is cheap**: a request rejected by the controller fails
  in well under 10ms — the refusal path never touches an executor.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.protocol import Question
from repro.data import independent, preference_set, query_point_with_rank
from repro.service import (
    CatalogueRegistry,
    ServiceClient,
    ServiceError,
    create_server,
)

N = 4_000
D = 3
K = 10
RANK = 51
SAMPLE = 200
ALGORITHM = "mwk"

SLOTS = 4            # max_concurrent execution slots
OVERLOAD = 4         # offered concurrency = OVERLOAD * SLOTS
N_HIGH = 4           # urgent requests inside the flood


@pytest.fixture(scope="module")
def catalogue():
    return independent(N, D, seed=0)


@pytest.fixture(scope="module")
def registry(catalogue):
    reg = CatalogueRegistry()
    reg.register("bench", catalogue)
    return reg


def make_typed(catalogue, j, *, priority=0, tenant=None):
    w = preference_set(1, D, seed=6100 + j)
    q = query_point_with_rank(catalogue, w[0], RANK)
    return Question(q=q, k=K, why_not=w, algorithm=ALGORITHM,
                    options={"sample_size": SAMPLE},
                    priority=priority, tenant=tenant)


def run_flood(port, questions, *, stagger=0.005):
    """Fire all questions concurrently in list order (a small
    stagger keeps arrival order deterministic and the loopback
    accept backlog happy); return per-question latencies in
    seconds, ordered like ``questions``."""
    clients = [ServiceClient(port=port) for _ in range(len(questions))]

    def one(index):
        start = time.perf_counter()
        answer = clients[index].ask("bench", questions[index],
                                    seed=index)
        elapsed = time.perf_counter() - start
        assert answer.ok
        return elapsed

    with ThreadPoolExecutor(max_workers=len(questions)) as pool:
        futures = []
        for index in range(len(questions)):
            futures.append(pool.submit(one, index))
            time.sleep(stagger)
        return [future.result() for future in futures]


def p50(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_priority_shaping_beats_fifo_under_overload(registry,
                                                    catalogue):
    """4x overload: N_HIGH urgent requests ride in a flood of
    background ones.  With every request at equal priority the
    bounded queue drains in arrival order (FIFO); with priorities
    the urgent requests jump the queue.  p50(high | shaped) must be
    >= 2x better than p50(high | FIFO)."""
    total = SLOTS * OVERLOAD
    # The urgent requests sit at the BACK of the arrival order —
    # the worst case for FIFO, the shaped case must rescue them.
    low = [make_typed(catalogue, j) for j in range(total - N_HIGH)]
    high_fifo = [make_typed(catalogue, 500 + j)
                 for j in range(N_HIGH)]
    high_shaped = [make_typed(catalogue, 500 + j, priority=10)
                   for j in range(N_HIGH)]

    server = create_server(registry, max_concurrent=SLOTS,
                           max_queue=4 * total)
    thread = threading.Thread(target=server.serve_forever,
                              daemon=True)
    thread.start()
    try:
        # Warm the catalogue's caches so both phases measure queueing,
        # not one-time index construction.
        warm = ServiceClient(port=server.port)
        assert warm.ask("bench", low[0], seed=999).ok

        fifo_lat = run_flood(server.port, low + high_fifo)
        shaped_lat = run_flood(server.port, low + high_shaped)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    fifo_high = p50(fifo_lat[-N_HIGH:])
    shaped_high = p50(shaped_lat[-N_HIGH:])
    print(f"\nhigh-priority p50 under {OVERLOAD}x overload: "
          f"FIFO {fifo_high * 1000:.1f}ms  "
          f"shaped {shaped_high * 1000:.1f}ms  "
          f"improvement {fifo_high / shaped_high:.1f}x")
    assert shaped_high * 2 <= fifo_high, (
        f"priority shaping gained only "
        f"{fifo_high / shaped_high:.2f}x (need >= 2x)")


def test_shed_requests_fail_fast(registry, catalogue):
    """A rejected request costs microseconds of server work: the
    refusal is computed before any executor is touched, so the
    client sees the 429 in well under 10ms."""
    server = create_server(registry, tenant_rate=0.001,
                           tenant_burst=1)
    thread = threading.Thread(target=server.serve_forever,
                              daemon=True)
    thread.start()
    try:
        client = ServiceClient(port=server.port)
        question = make_typed(catalogue, 900, tenant="shed")
        assert client.ask("bench", question, seed=0).ok  # burst token
        latencies = []
        for _ in range(20):
            start = time.perf_counter()
            with pytest.raises(ServiceError) as excinfo:
                client.ask("bench", question)
            latencies.append(time.perf_counter() - start)
            assert excinfo.value.status == 429
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    shed_p50 = p50(latencies)
    print(f"\nshed round-trip p50: {shed_p50 * 1000:.2f}ms "
          f"(max {max(latencies) * 1000:.2f}ms)")
    assert shed_p50 < 0.010, (
        f"shed p50 {shed_p50 * 1000:.2f}ms >= 10ms")
