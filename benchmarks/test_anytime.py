"""Anytime execution benchmarks: deadlines kept, interleaving wins.

Two claims the anytime redesign makes, measured:

1. **Deadlines are real.**  A deadline-budgeted ``Session.ask`` lands
   within 20% of a 50 ms budget while the equivalent one-shot call
   (same huge sample target, no budget) blows straight through it.
2. **Interleaving beats head-of-line blocking.**  Under one shared
   deadline, round-robin refinement spreads the remaining time across
   a mixed cheap/expensive batch; serial (head-of-line) refinement
   lets the first expensive question starve everyone behind it, so
   the least-refined item of the interleaved batch ends up far ahead
   of the least-refined item of the serial batch.
"""

from __future__ import annotations

import time

import pytest

from repro.core.protocol import Budget, Question
from repro.core.session import Session
from repro.data import independent, preference_set, query_point_with_rank

N = 20_000
D = 3
K = 10
RANK = 101

#: The issue's target: answer within 50 ms, overshoot at most 20%.
DEADLINE_MS = 50.0
OVERSHOOT = 1.2

#: A sample target far beyond what 50 ms can examine on this dataset.
HUGE = 400_000


@pytest.fixture(scope="module")
def session():
    return Session(independent(N, D, seed=3))


def make_question(session, j, *, budget=None):
    w = preference_set(1, D, seed=6400 + j)
    q = query_point_with_rank(session.points, w[0], RANK)
    return Question(q=q, k=K, why_not=w, algorithm="mwk",
                    budget=budget, id=f"bench-{j}")


def test_deadline_bounded_ask_meets_budget(session):
    budgeted = make_question(
        session, 0,
        budget=Budget(deadline_ms=DEADLINE_MS, sample_budget=HUGE))
    one_shot = make_question(session, 0)
    one_shot = Question(q=one_shot.q, k=K, why_not=one_shot.why_not,
                        algorithm="mwk",
                        options={"sample_size": HUGE}, id="one-shot")

    # Warm the context (tree + partition) so both paths measure
    # refinement, not index construction.
    session.ask(make_question(
        session, 0, budget=Budget(sample_budget=64)))

    # Best of three for the deadline path: the chunk-sizing loop is
    # wall-clock-driven, so one noisy scheduler hiccup on a loaded CI
    # machine must not fail the claim.
    deadline_elapsed = []
    for attempt in range(3):
        start = time.perf_counter()
        answer = session.ask(budgeted, seed=attempt)
        deadline_elapsed.append(time.perf_counter() - start)
        assert answer.ok and answer.quality is not None
        assert not answer.quality.converged   # budget cut it short
    best_ms = min(deadline_elapsed) * 1000.0

    start = time.perf_counter()
    unbounded = session.ask(one_shot, seed=0)
    one_shot_ms = (time.perf_counter() - start) * 1000.0
    assert unbounded.ok

    assert best_ms <= DEADLINE_MS * OVERSHOOT, (
        f"deadline-budgeted ask took {best_ms:.1f}ms against a "
        f"{DEADLINE_MS}ms budget (allowed overshoot 20%)")
    assert one_shot_ms > DEADLINE_MS * OVERSHOOT, (
        f"one-shot at sample_size={HUGE} finished in "
        f"{one_shot_ms:.1f}ms — too fast to demonstrate the budget; "
        f"raise HUGE")


def test_interleaving_beats_head_of_line(session):
    """Mixed cheap/expensive batch under one shared deadline: the
    least-refined question fares far better interleaved."""
    questions = []
    for j in range(6):
        # Even items are expensive (huge appetite), odd ones cheap —
        # the shape that makes head-of-line blocking hurt.
        budget = Budget(sample_budget=HUGE if j % 2 == 0 else 2_000)
        questions.append(make_question(session, 10 + j,
                                       budget=budget))

    deadline = 250.0
    interleaved = session.ask_batch(questions, seed=1,
                                    deadline_ms=deadline)
    serial = session.ask_batch(questions, seed=1,
                               deadline_ms=deadline,
                               interleave=False)
    assert all(a.ok for a in interleaved + serial)

    floor_interleaved = min(a.quality.samples_examined
                            for a in interleaved)
    floor_serial = min(a.quality.samples_examined for a in serial)
    total_interleaved = sum(a.quality.samples_examined
                            for a in interleaved)

    # Head-of-line: the first expensive question eats the deadline,
    # later questions get little beyond their guaranteed first round.
    # Interleaved: every question keeps receiving chunks, so the
    # least-refined item is far ahead.
    assert floor_interleaved >= 2 * floor_serial, (
        f"interleaving floor {floor_interleaved} vs head-of-line "
        f"floor {floor_serial}")
    assert total_interleaved > 0

    # And interleaving's penalties are never collectively worse where
    # both strategies finished an item's budget (the cheap items).
    for a, b in zip(interleaved, serial):
        if (a.quality.converged and b.quality.converged
                and a.quality.samples_examined
                == b.quality.samples_examined):
            assert a.penalty == b.penalty


def test_anytime_overhead_is_bounded(session, benchmark):
    """Chunked refinement to a sample budget costs little more than
    the one-shot call it equals — the stepper scan is vectorized."""
    budgeted = make_question(session, 30,
                             budget=Budget(sample_budget=2_000))
    one_shot = make_question(session, 30)
    one_shot = Question(q=one_shot.q, k=K, why_not=one_shot.why_not,
                        algorithm="mwk",
                        options={"sample_size": 2_000})
    assert session.ask(budgeted, seed=0).penalty == \
        session.ask(one_shot, seed=0).penalty
    benchmark(lambda: session.ask(budgeted, seed=0))
