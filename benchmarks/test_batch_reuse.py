"""Micro-benchmark: cold vs. warm batch answering.

Quantifies the engine layer's reason to exist — answering a batch of
why-not questions (several customer panels per distinct product)
through one shared :class:`DatasetContext` versus answering each
question cold (fresh R-tree, fresh ``FindIncom`` traversal per
question, the pre-engine serving path).  The warm/cold timing ratio
is the number tracked in the perf trajectory; the index-work counters
are asserted so the benchmark keeps measuring what it claims to.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.context import DatasetContext
# This benchmark *measures the shims* (legacy vs typed batch paths),
# so importing them is the point.
from repro.engine.executor import answer_one, execute_batch  # reprolint: disable=DEPRECATED-API
from repro.topk.scan import rank_of_scan

N = 4_000
D = 3
K = 10
RANK = 51
SAMPLE = 50
N_PRODUCTS = 4
PANELS = 5


@pytest.fixture(scope="module")
def catalogue():
    return independent(N, D, seed=0)


@pytest.fixture(scope="module")
def questions(catalogue):
    out = []
    for j in range(N_PRODUCTS):
        base = preference_set(1, D, seed=60 + j)[0]
        q = query_point_with_rank(catalogue, base, RANK)
        added = 0
        offset = 0
        while added < PANELS:
            wm = preference_set(1, D, seed=1000 * j + offset)
            offset += 1
            if rank_of_scan(catalogue, wm[0], q) > K:
                out.append((q, K, wm))
                added += 1
    return out


@pytest.mark.parametrize("algorithm", ["mwk", "mqwk"])
def test_batch_cold(benchmark, catalogue, questions, algorithm):
    """No context reuse: fresh index + traversal per question."""

    def cold():
        items = []
        for index, (q, k, wm) in enumerate(questions):
            ctx = DatasetContext(catalogue)
            items.append(answer_one(
                ctx, index, q, k, wm, algorithm, sample_size=SAMPLE,
                rng=np.random.default_rng(index)))
        return items

    items = benchmark(cold)
    assert all(item.error is None for item in items)


@pytest.mark.parametrize("algorithm", ["mwk", "mqwk"])
def test_batch_warm(benchmark, catalogue, questions, algorithm):
    """Shared context: the index and the per-product partitions are
    paid once per catalogue (amortized away across rounds)."""
    shared = DatasetContext(catalogue)
    shared.tree  # pre-warm, as a long-running serving process would

    def warm():
        return execute_batch(shared, questions, algorithm,
                             sample_size=SAMPLE, seed=0)

    items = benchmark(warm)
    assert all(item.error is None for item in items)
    assert shared.stats.tree_builds == 1
    assert shared.stats.findincom_traversals == N_PRODUCTS


@pytest.mark.parametrize("workers", [1, 4])
def test_batch_warm_parallel(benchmark, catalogue, questions, workers):
    """Warm context + thread-pool executor (the serving hot path)."""
    shared = DatasetContext(catalogue)
    shared.tree

    def run():
        return execute_batch(shared, questions, "mwk",
                             sample_size=SAMPLE, seed=0,
                             workers=workers)

    items = benchmark(run)
    assert all(item.valid for item in items)
