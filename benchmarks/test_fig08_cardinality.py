"""Figure 8 benchmark: WQRTQ cost vs. dataset cardinality.

The paper sweeps |P| from 10K to 1000K and observes near-linear growth
of all three algorithms (the R-tree traversals dominate).  The sweep
here uses 1K-16K points so the benchmark suite stays fast; growth
remains visible across the 16x range.
"""

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k

from conftest import make_query

CARDINALITIES = [1_000, 4_000, 16_000]


@pytest.mark.parametrize("n", CARDINALITIES)
def test_mqp_vs_cardinality(benchmark, n):
    query = make_query(n=n)
    result = benchmark(lambda: modify_query_point(query))
    assert 0.0 <= result.penalty <= 1.0


@pytest.mark.parametrize("n", CARDINALITIES)
def test_mwk_vs_cardinality(benchmark, n):
    query = make_query(n=n)
    result = benchmark(
        lambda: modify_weights_and_k(
            query, sample_size=50, rng=np.random.default_rng(0)))
    assert 0.0 <= result.penalty <= 1.0


@pytest.mark.parametrize("n", CARDINALITIES)
def test_mqwk_vs_cardinality(benchmark, n):
    query = make_query(n=n)
    result = benchmark(
        lambda: modify_query_weights_and_k(
            query, sample_size=20, rng=np.random.default_rng(0)))
    assert 0.0 <= result.penalty <= 1.0
