"""Ablation benchmarks for the paper's design choices (Section 4).

* reuse: MQWK's single-traversal FindIncom cache vs. re-traversing the
  R-tree per sample query point;
* top-k engine: BRS vs. sequential scan inside MQP;
* RTA vs. naive bichromatic reverse top-k (the substrate the original
  query runs on).
"""

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.data import preference_set
from repro.rtopk.bichromatic import brtopk_naive, brtopk_rta
from repro.rtopk.grta import brtopk_grta

from conftest import make_query


@pytest.mark.parametrize("use_reuse", [True, False],
                         ids=["reuse", "no-reuse"])
def test_mqwk_reuse_ablation(benchmark, use_reuse):
    query = make_query()
    result = benchmark(
        lambda: modify_query_weights_and_k(
            query, sample_size=20, rng=np.random.default_rng(0),
            use_reuse=use_reuse))
    assert 0.0 <= result.penalty <= 1.0


@pytest.mark.parametrize("use_rtree", [True, False],
                         ids=["BRS", "scan"])
def test_mqp_topk_engine_ablation(benchmark, use_rtree):
    query = make_query(n=16_000)
    result = benchmark(
        lambda: modify_query_point(query, use_rtree=use_rtree))
    assert 0.0 <= result.penalty <= 1.0


@pytest.mark.parametrize("engine", ["rta", "grta", "naive"])
def test_reverse_topk_engine_ablation(benchmark, engine):
    query = make_query(n=8_000)
    weights = preference_set(100, 3, seed=5)
    if engine == "rta":
        run = lambda: brtopk_rta(query.rtree, weights, query.q, 10)
    elif engine == "grta":
        run = lambda: brtopk_grta(query.rtree, weights, query.q, 10)
    else:
        run = lambda: brtopk_naive(query.points, weights, query.q, 10)
    result = benchmark(run)
    assert result is not None
