"""Figure 9 benchmark: WQRTQ cost vs. k.

The paper sweeps k in {10..50} on all four datasets; larger k means a
deeper k-th-point search for MQP and a larger k'_max for MWK.  The
rank knob is held above the largest k so every cell remains a valid
why-not question (as in the paper, whose default rank is 101).
"""

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k

from conftest import make_query

KS = [10, 30, 50]


@pytest.mark.parametrize("k", KS)
def test_mqp_vs_k(benchmark, k):
    query = make_query(k=k, rank=80)
    result = benchmark(lambda: modify_query_point(query))
    assert 0.0 <= result.penalty <= 1.0


@pytest.mark.parametrize("k", KS)
def test_mwk_vs_k(benchmark, k):
    query = make_query(k=k, rank=80)
    result = benchmark(
        lambda: modify_weights_and_k(
            query, sample_size=50, rng=np.random.default_rng(0)))
    assert result.k_refined >= k


@pytest.mark.parametrize("k", KS)
def test_mqwk_vs_k(benchmark, k):
    query = make_query(k=k, rank=80)
    result = benchmark(
        lambda: modify_query_weights_and_k(
            query, sample_size=20, rng=np.random.default_rng(0)))
    assert 0.0 <= result.penalty <= 1.0


@pytest.mark.parametrize("dataset", ["household", "nba"])
def test_mwk_real_datasets(benchmark, dataset):
    """The paper's Figure 9(a)-(b) panels (real-data stand-ins)."""
    d = 6 if dataset == "household" else 13
    query = make_query(dataset=dataset, n=3_000, d=d)
    result = benchmark(
        lambda: modify_weights_and_k(
            query, sample_size=50, rng=np.random.default_rng(0)))
    assert 0.0 <= result.penalty <= 1.0
