"""Figure 10 benchmark: WQRTQ cost vs. actual rank of q under Wm.

Deeper ranks stress every algorithm: MQP's progressive search must go
deeper before finding the k-th point's hyperplane far from q (larger
L in Theorem 1), and MWK's k'_max — the sample-pruning threshold —
grows with the rank.  The paper sweeps {11, 101, 501, 1001}; scaled
here to {11, 51, 201}.
"""

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k

from conftest import make_query

RANKS = [11, 51, 201]


@pytest.mark.parametrize("rank", RANKS)
def test_mqp_vs_rank(benchmark, rank):
    query = make_query(rank=rank)
    result = benchmark(lambda: modify_query_point(query))
    assert 0.0 <= result.penalty <= 1.0


@pytest.mark.parametrize("rank", RANKS)
def test_mwk_vs_rank(benchmark, rank):
    query = make_query(rank=rank)
    result = benchmark(
        lambda: modify_weights_and_k(
            query, sample_size=50, rng=np.random.default_rng(0)))
    # k'_max equals the (single) why-not vector's rank here.
    assert result.k_max == rank


@pytest.mark.parametrize("rank", RANKS)
def test_mqwk_vs_rank(benchmark, rank):
    query = make_query(rank=rank)
    result = benchmark(
        lambda: modify_query_weights_and_k(
            query, sample_size=20, rng=np.random.default_rng(0)))
    assert 0.0 <= result.penalty <= 1.0
