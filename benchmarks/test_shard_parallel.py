"""Serving-scale benchmark: multi-process ``/batch`` vs single-process.

Tentpole acceptance for the worker-pool tier: a warm ``/batch``
request against a daemon with ``--workers 4`` must answer a
CPU-bound mixed workload at >= 2x the single-process throughput.
The refinement algorithms spend their time in Python stepper code
(the GIL-bound half the thread pool cannot parallelize), so the
speedup has to come from real processes attached to the shared
snapshot.

The assertion is gated on ``os.cpu_count() >= 4``: on a 1-2 core
box four workers time-slice one core and the ratio is physically
capped near 1x.  Throughput is always measured and printed, so the
BENCH trajectory records serving scale on every run.

Byte-identity of the pooled answers is asserted here too — a
throughput win that changed the answers would be a regression, not
a result.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.data import independent, preference_set, query_point_with_rank
from repro.service import CatalogueRegistry, ServiceClient, create_server

N = 4_000
D = 3
K = 10
RANK = 51
SAMPLE = 50
N_QUESTIONS = 40
POOL_WORKERS = 4
TIMED_ROUNDS = 3


@pytest.fixture(scope="module")
def catalogue():
    return independent(N, D, seed=0)


@pytest.fixture(scope="module")
def questions(catalogue):
    """A mixed CPU-bound workload: sampling algorithms dominate."""
    out = []
    for j in range(N_QUESTIONS):
        w = preference_set(1, D, seed=7000 + j)
        q = query_point_with_rank(catalogue, w[0], RANK)
        out.append((q, K, w))
    return out


def _serve(registry, **kwargs):
    server = create_server(registry, **kwargs)
    thread = threading.Thread(target=server.serve_forever,
                              daemon=True)
    thread.start()
    return server, thread


@pytest.fixture(scope="module")
def single_process(catalogue):
    registry = CatalogueRegistry()
    registry.register("bench", catalogue)
    server, thread = _serve(registry)
    yield ServiceClient(port=server.port)
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def pooled(catalogue):
    registry = CatalogueRegistry()
    registry.register("bench", catalogue)
    server, thread = _serve(registry, workers=POOL_WORKERS)
    yield ServiceClient(port=server.port)
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def run_batch(client, questions):
    response = client.batch("bench", questions, algorithm="mwk",
                            sample_size=SAMPLE, seed=0, workers=1)
    assert response["summary"]["failed"] == 0
    return response


def throughput(client, questions) -> tuple[float, dict]:
    run_batch(client, questions)          # warm: tree, caches, pool
    best = 0.0
    response = None
    for _ in range(TIMED_ROUNDS):
        start = time.perf_counter()
        response = run_batch(client, questions)
        seconds = time.perf_counter() - start
        best = max(best, len(questions) / seconds)
    return best, response


def test_pooled_batch_throughput(single_process, pooled, questions):
    base_qps, base_response = throughput(single_process, questions)
    pool_qps, pool_response = throughput(pooled, questions)

    # Identity first: the pooled items must match the single-process
    # ones exactly (elapsed is per-item wall time, the only
    # legitimately differing field).
    def strip(items):
        return [{key: value for key, value in item.items()
                 if key != "elapsed"} for item in items]

    assert strip(pool_response["items"]) \
        == strip(base_response["items"])

    speedup = pool_qps / base_qps
    print(f"\n/batch throughput ({N_QUESTIONS} questions, mwk "
          f"sample_size={SAMPLE}, n={N}): "
          f"single-process {base_qps:.1f} q/s, "
          f"{POOL_WORKERS}-worker pool {pool_qps:.1f} q/s, "
          f"speedup {speedup:.2f}x "
          f"(cpus={os.cpu_count()})")
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"4-worker /batch is only {speedup:.2f}x the "
            f"single-process baseline")


def test_pooled_stats_attribute_work(pooled, questions):
    """The pool's /stats counters must attribute the batch work."""
    run_batch(pooled, questions)
    stats = pooled.stats()["workers"]
    assert stats["workers"] == POOL_WORKERS
    per_worker = [w["questions"] for w in stats["per_worker"]]
    assert sum(per_worker) >= N_QUESTIONS
    # Contiguous slicing: every worker got a share of the batch.
    assert all(count > 0 for count in per_worker)
